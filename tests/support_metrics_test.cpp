// Tests for support/metrics.hpp (lock-free histogram) and
// support/trace.hpp (phase spans + Chrome-trace export).
#include "support/metrics.hpp"
#include "support/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace {

using sepdc::metrics::Histogram;
using sepdc::metrics::HistogramSnapshot;
using sepdc::metrics::TraceRecorder;
using sepdc::metrics::TraceSpan;

// ----------------------------------------------------------- geometry

TEST(HistogramGeometry, LinearRegionIsExact) {
  // Values below 2 * kSubBuckets get unit-width buckets: index == value.
  for (std::uint64_t v = 0; v < 2 * Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_lower(v), v);
    EXPECT_EQ(Histogram::bucket_upper(v), v + 1);
  }
}

TEST(HistogramGeometry, BucketsPartitionTheAxis) {
  // Consecutive buckets tile the axis with no gaps or overlaps.
  for (std::size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
    EXPECT_LT(Histogram::bucket_lower(i), Histogram::bucket_upper(i));
    EXPECT_EQ(Histogram::bucket_upper(i), Histogram::bucket_lower(i + 1));
  }
}

TEST(HistogramGeometry, IndexInvertsBounds) {
  // Every bucket's lower bound and last value map back to the bucket.
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower(i)), i);
    if (i + 1 < Histogram::kBuckets) {
      EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_upper(i) - 1), i);
    }
  }
}

TEST(HistogramGeometry, RelativeErrorBound) {
  // Bucket width / lower bound <= 1/kSubBuckets outside the (exact)
  // linear region: the quantization-error guarantee quantiles rely on.
  for (std::size_t i = 2 * Histogram::kSubBuckets;
       i + 1 < Histogram::kBuckets; ++i) {
    double lo = static_cast<double>(Histogram::bucket_lower(i));
    double width =
        static_cast<double>(Histogram::bucket_upper(i)) - lo;
    EXPECT_LE(width / lo,
              1.0 / static_cast<double>(Histogram::kSubBuckets));
  }
}

TEST(HistogramGeometry, HugeValuesClampToLastBucket) {
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}),
            Histogram::kBuckets - 1);
}

// ----------------------------------------------------------- recording

TEST(Histogram, CountSumMinMax) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(5, 3);  // weighted: three observations of 5
  auto s = h.snapshot();
  EXPECT_EQ(s.count(), 5u);
  EXPECT_EQ(s.sum(), 10u + 20u + 3u * 5u);
  EXPECT_EQ(s.min(), 5u);
  EXPECT_EQ(s.max(), 20u);
  EXPECT_DOUBLE_EQ(s.mean(), 45.0 / 5.0);
}

TEST(Histogram, ZeroWeightIsNoOp) {
  Histogram h;
  h.record(10, 0);
  auto s = h.snapshot();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.min(), 0u);
  EXPECT_EQ(s.max(), 0u);
}

TEST(Histogram, RecordSecondsConvertsToNanoseconds) {
  Histogram h;
  h.record_seconds(1e-6);   // 1000 ns, exact in no bucket but in range
  h.record_seconds(-1.0);   // clamps to 0
  auto s = h.snapshot();
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.min(), 0u);
  EXPECT_EQ(s.max(), 1000u);
}

// ----------------------------------------------------------- quantiles

TEST(Histogram, QuantilesExactInLinearRegion) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 50; ++v) h.record(v);
  auto s = h.snapshot();
  // Values < 64 land in exact unit buckets; interpolation stays within
  // the bucket, so quantiles are within 1 of the true order statistic.
  EXPECT_NEAR(s.p50(), 25.5, 1.0);
  EXPECT_NEAR(s.p90(), 45.1, 1.0);
  EXPECT_NEAR(s.p99(), 49.5, 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 50.0);
}

TEST(Histogram, QuantileRelativeErrorInLogRegion) {
  Histogram h;
  std::vector<std::uint64_t> values;
  std::uint64_t v = 100;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(v);
    h.record(v);
    v = v * 1009 % 99991 + 64;  // deterministic spread across octaves
  }
  std::sort(values.begin(), values.end());
  auto s = h.snapshot();
  for (double q : {0.5, 0.9, 0.99}) {
    std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1));
    double exact = static_cast<double>(values[rank]);
    // One bucket of slack on top of the 1/32 relative width.
    EXPECT_NEAR(s.quantile(q), exact, exact / 16.0 + 1.0)
        << "q=" << q;
  }
}

TEST(Histogram, EmptySnapshotIsZero) {
  Histogram h;
  auto s = h.snapshot();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.p50(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, SingleValueQuantilesAreThatValue) {
  Histogram h;
  h.record(12345);
  auto s = h.snapshot();
  // min/max clamping makes single-value quantiles exact even though
  // 12345 lands in a wide bucket.
  EXPECT_DOUBLE_EQ(s.p50(), 12345.0);
  EXPECT_DOUBLE_EQ(s.p99(), 12345.0);
}

// --------------------------------------------------------------- merge

HistogramSnapshot snap_of(std::initializer_list<std::uint64_t> values) {
  Histogram h;
  for (std::uint64_t v : values) h.record(v);
  return h.snapshot();
}

void expect_equal(const HistogramSnapshot& a, const HistogramSnapshot& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.counts(), b.counts());
}

TEST(HistogramMerge, MatchesSingleHistogram) {
  auto ab = snap_of({1, 2});
  ab.merge(snap_of({100, 200000}));
  expect_equal(ab, snap_of({1, 2, 100, 200000}));
}

TEST(HistogramMerge, AssociativeAndCommutative) {
  auto a = [] { return snap_of({5, 10}); };
  auto b = [] { return snap_of({1000}); };
  auto c = [] { return snap_of({7, 1u << 20}); };

  auto left = a();
  left.merge(b()).merge(c());  // (a + b) + c
  auto bc = b();
  bc.merge(c());
  auto right = a();
  right.merge(bc);  // a + (b + c)
  expect_equal(left, right);

  auto ba = b();
  ba.merge(a());
  auto ab = a();
  ab.merge(b());
  expect_equal(ab, ba);
}

TEST(HistogramMerge, EmptyIsIdentity) {
  auto a = snap_of({3, 9, 400});
  auto before = a;
  a.merge(HistogramSnapshot{});
  expect_equal(a, before);

  HistogramSnapshot empty;
  empty.merge(before);
  expect_equal(empty, before);
}

// --------------------------------------------------- concurrent writers

// Exactness under concurrency: relaxed atomics drop nothing, so after
// the writers join, counts and sums are exactly what was recorded. Run
// under TSan in CI.
TEST(Histogram, ConcurrentWritersAreExact) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        h.record(static_cast<std::uint64_t>(t) * 1000 + i % 97);
    });
  }
  for (auto& th : threads) th.join();

  auto s = h.snapshot();
  EXPECT_EQ(s.count(), kThreads * kPerThread);
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t)
    for (std::uint64_t i = 0; i < kPerThread; ++i)
      expected_sum += static_cast<std::uint64_t>(t) * 1000 + i % 97;
  EXPECT_EQ(s.sum(), expected_sum);
  EXPECT_EQ(s.min(), 0u);
  EXPECT_EQ(s.max(), (kThreads - 1) * 1000 + 96u);
}

// ---------------------------------------------------------------- trace

TEST(Trace, SpansAreRecorded) {
  TraceRecorder rec;
  {
    TraceSpan outer(&rec, "outer", "test");
    TraceSpan inner(&rec, "inner", "test");
  }
  EXPECT_EQ(rec.event_count(), 2u);
  auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  // Inner ends first (reverse destruction order).
  EXPECT_STREQ(events[0].second.name, "inner");
  EXPECT_STREQ(events[1].second.name, "outer");
  EXPECT_GE(events[1].second.start_ns + events[1].second.dur_ns,
            events[0].second.start_ns + events[0].second.dur_ns);
}

TEST(Trace, NullRecorderIsNoOp) {
  TraceSpan span(nullptr, "ghost", "test");
  span.end();  // must not crash
}

TEST(Trace, ExplicitEndIsIdempotent) {
  TraceRecorder rec;
  TraceSpan span(&rec, "once", "test");
  span.end();
  span.end();
  EXPECT_EQ(rec.event_count(), 1u);
}

TEST(Trace, MoveTransfersOwnership) {
  TraceRecorder rec;
  {
    TraceSpan a(&rec, "moved", "test");
    TraceSpan b(std::move(a));
    // a must not record a second event at destruction.
  }
  EXPECT_EQ(rec.event_count(), 1u);
}

TEST(Trace, ThreadsGetDistinctTids) {
  TraceRecorder rec;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&rec] {
      TraceSpan span(&rec, "worker", "test");
    });
  }
  for (auto& th : threads) th.join();
  auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  std::vector<int> tids;
  for (const auto& [tid, e] : events) tids.push_back(tid);
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(tids, (std::vector<int>{1, 2, 3, 4}));
}

// --------------------------------------------------------- windowing

TEST(HistogramSnapshot, DeltaSinceIsolatesTheWindow) {
  Histogram h;
  for (std::uint64_t v : {10, 20, 30}) h.record(v);
  auto before = h.snapshot();
  for (std::uint64_t v : {100, 200, 300, 400}) h.record(v);
  auto after = h.snapshot();

  auto window = after.delta_since(before);
  EXPECT_EQ(window.count(), 4u);
  EXPECT_EQ(window.sum(), 1000u);
  // The window's quantiles describe only the post-`before` recordings;
  // in the linear/small-bucket region the extremes are near-exact.
  EXPECT_GE(window.min(), 100u);
  EXPECT_LE(window.max(), 400u);
  EXPECT_GE(window.quantile(0.0), 100.0);
  EXPECT_LE(window.quantile(1.0), 400.0);
  // Windowing inverts merging: prev + window rebuilds the cumulative
  // snapshot, bucket for bucket.
  HistogramSnapshot rebuilt = before;
  rebuilt.merge(window);
  EXPECT_EQ(rebuilt.count(), after.count());
  EXPECT_EQ(rebuilt.sum(), after.sum());
  EXPECT_EQ(rebuilt.counts(), after.counts());
}

TEST(HistogramSnapshot, DeltaSinceEdgeCases) {
  Histogram h;
  h.record(42, 3);
  auto snap = h.snapshot();

  // Empty prev: the window is the whole history.
  auto whole = snap.delta_since(HistogramSnapshot{});
  EXPECT_EQ(whole.count(), 3u);
  EXPECT_EQ(whole.sum(), snap.sum());
  EXPECT_EQ(whole.min(), 42u);
  EXPECT_EQ(whole.max(), 42u);

  // Identical snapshots: an empty window, quantiles all zero.
  auto empty = snap.delta_since(snap);
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.sum(), 0u);
  EXPECT_EQ(empty.min(), 0u);
  EXPECT_EQ(empty.max(), 0u);
  EXPECT_EQ(empty.quantile(0.99), 0.0);
}

TEST(Trace, ChromeTraceJsonShape) {
  TraceRecorder rec;
  { TraceSpan span(&rec, "phase_a", "cat_x"); }
  std::ostringstream os;
  rec.write_chrome_trace(os);
  std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"phase_a\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"cat_x\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  // Balanced brackets: the exporter must emit valid JSON even with no
  // JSON library to lean on.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Trace, FreshRecorderDoesNotInheritThreadCaches) {
  // The thread-local buffer cache is keyed by recorder id: a second
  // recorder used from the same thread must start empty.
  {
    TraceRecorder first;
    TraceSpan span(&first, "one", "test");
  }
  TraceRecorder second;
  EXPECT_EQ(second.event_count(), 0u);
  { TraceSpan span(&second, "two", "test"); }
  EXPECT_EQ(second.event_count(), 1u);
}

}  // namespace
