#include <gtest/gtest.h>

#include "geometry/aabb.hpp"
#include "geometry/ball.hpp"
#include "geometry/constants.hpp"
#include "geometry/point.hpp"
#include "geometry/separator_shape.hpp"
#include "support/rng.hpp"

namespace sepdc::geo {
namespace {

TEST(Point, Arithmetic) {
  Point<2> a{{1.0, 2.0}};
  Point<2> b{{3.0, -1.0}};
  Point<2> s = a + b;
  EXPECT_DOUBLE_EQ(s[0], 4.0);
  EXPECT_DOUBLE_EQ(s[1], 1.0);
  Point<2> d = a - b;
  EXPECT_DOUBLE_EQ(d[0], -2.0);
  Point<2> h = a * 0.5;
  EXPECT_DOUBLE_EQ(h[1], 1.0);
  EXPECT_DOUBLE_EQ((a / 2.0)[0], 0.5);
}

TEST(Point, DotNormDistance) {
  Point<3> a{{1.0, 2.0, 2.0}};
  Point<3> b{{0.0, 0.0, 0.0}};
  EXPECT_DOUBLE_EQ(dot(a, a), 9.0);
  EXPECT_DOUBLE_EQ(norm(a), 3.0);
  EXPECT_DOUBLE_EQ(distance(a, b), 3.0);
  EXPECT_DOUBLE_EQ(distance2(a, b), 9.0);
  Point<3> u = normalized(a);
  EXPECT_NEAR(norm(u), 1.0, 1e-15);
}

TEST(Ball, StrictInteriorContainment) {
  Ball<2> b{{{0.0, 0.0}}, 1.0};
  EXPECT_TRUE(b.contains(Point<2>{{0.5, 0.0}}));
  EXPECT_FALSE(b.contains(Point<2>{{1.0, 0.0}}));  // boundary excluded
  EXPECT_FALSE(b.contains(Point<2>{{1.5, 0.0}}));
}

TEST(Sphere, PointClassification) {
  Sphere<2> s{{{0.0, 0.0}}, 2.0};
  EXPECT_EQ(classify_point(s, Point<2>{{1.0, 0.0}}), Side::Inner);
  EXPECT_EQ(classify_point(s, Point<2>{{2.0, 0.0}}), Side::Inner);  // on S
  EXPECT_EQ(classify_point(s, Point<2>{{3.0, 0.0}}), Side::Outer);
}

TEST(Sphere, BallClassification) {
  Sphere<2> s{{{0.0, 0.0}}, 2.0};
  EXPECT_EQ(classify_ball(s, Ball<2>{{{0.0, 0.0}}, 1.0}), Region::Inner);
  EXPECT_EQ(classify_ball(s, Ball<2>{{{5.0, 0.0}}, 1.0}), Region::Outer);
  EXPECT_EQ(classify_ball(s, Ball<2>{{{2.0, 0.0}}, 0.5}), Region::Cut);
  // Tangent from inside counts as Cut (conservative).
  EXPECT_EQ(classify_ball(s, Ball<2>{{{1.0, 0.0}}, 1.0}), Region::Cut);
}

TEST(SeparatorShape, SphereClassifyAndFlip) {
  auto shape = SeparatorShape<2>::make_sphere(Sphere<2>{{{0, 0}}, 1.0});
  EXPECT_EQ(shape.classify(Point<2>{{0.5, 0.0}}), Side::Inner);
  EXPECT_EQ(shape.classify(Point<2>{{2.0, 0.0}}), Side::Outer);

  auto flipped =
      SeparatorShape<2>::make_sphere(Sphere<2>{{{0, 0}}, 1.0}, true);
  EXPECT_EQ(flipped.classify(Point<2>{{0.5, 0.0}}), Side::Outer);
  EXPECT_EQ(flipped.classify(Point<2>{{2.0, 0.0}}), Side::Inner);
  // Cut balls stay Cut regardless of flip.
  EXPECT_EQ(flipped.classify(Ball<2>{{{1.0, 0.0}}, 0.2}), Region::Cut);
  EXPECT_EQ(flipped.classify(Ball<2>{{{0.0, 0.0}}, 0.2}), Region::Outer);
}

TEST(SeparatorShape, HalfspaceClassify) {
  Halfspace<2> h;
  h.normal = Point<2>{{1.0, 0.0}};
  h.offset = 0.5;
  auto shape = SeparatorShape<2>::make_halfspace(h);
  EXPECT_EQ(shape.classify(Point<2>{{0.0, 7.0}}), Side::Inner);
  EXPECT_EQ(shape.classify(Point<2>{{0.5, 0.0}}), Side::Inner);  // on plane
  EXPECT_EQ(shape.classify(Point<2>{{1.0, 0.0}}), Side::Outer);

  EXPECT_EQ(shape.classify(Ball<2>{{{0.0, 0.0}}, 0.1}), Region::Inner);
  EXPECT_EQ(shape.classify(Ball<2>{{{1.0, 0.0}}, 0.1}), Region::Outer);
  EXPECT_EQ(shape.classify(Ball<2>{{{0.5, 0.0}}, 0.1}), Region::Cut);
}

TEST(SeparatorShape, HalfspaceUnnormalizedNormal) {
  Halfspace<3> h;
  h.normal = Point<3>{{0.0, 2.0, 0.0}};  // length 2
  h.offset = 2.0;                        // plane y == 1
  auto shape = SeparatorShape<3>::make_halfspace(h);
  EXPECT_EQ(shape.classify(Ball<3>{{{0.0, 0.0, 0.0}}, 0.5}), Region::Inner);
  EXPECT_EQ(shape.classify(Ball<3>{{{0.0, 1.2, 0.0}}, 0.5}), Region::Cut);
  EXPECT_EQ(shape.classify(Ball<3>{{{0.0, 3.0, 0.0}}, 0.5}), Region::Outer);
}

TEST(Aabb, OfPointsAndQueries) {
  std::vector<Point<2>> pts{{{0.0, 1.0}}, {{2.0, -1.0}}, {{1.0, 3.0}}};
  auto box = Aabb<2>::of(pts);
  EXPECT_DOUBLE_EQ(box.lo[0], 0.0);
  EXPECT_DOUBLE_EQ(box.hi[1], 3.0);
  EXPECT_TRUE(box.contains(Point<2>{{1.0, 1.0}}));
  EXPECT_FALSE(box.contains(Point<2>{{-0.1, 1.0}}));
  EXPECT_DOUBLE_EQ(box.extent(), 4.0);
  EXPECT_EQ(box.widest_axis(), 1);
  EXPECT_DOUBLE_EQ(box.center()[0], 1.0);
}

TEST(Aabb, Distance2) {
  std::vector<Point<2>> pts{{{0.0, 0.0}}, {{1.0, 1.0}}};
  auto box = Aabb<2>::of(pts);
  EXPECT_DOUBLE_EQ(box.distance2(Point<2>{{0.5, 0.5}}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(box.distance2(Point<2>{{2.0, 0.5}}), 1.0);   // right
  EXPECT_DOUBLE_EQ(box.distance2(Point<2>{{2.0, 2.0}}), 2.0);   // corner
}

TEST(Aabb, DegenerateSinglePoint) {
  std::vector<Point<3>> pts{{{1.0, 2.0, 3.0}}};
  auto box = Aabb<3>::of(pts);
  EXPECT_DOUBLE_EQ(box.extent(), 0.0);
  EXPECT_TRUE(box.contains(pts[0]));
}

TEST(Constants, KissingNumbers) {
  EXPECT_EQ(kissing_number(1), 2);
  EXPECT_EQ(kissing_number(2), 6);
  EXPECT_EQ(kissing_number(3), 12);
  EXPECT_EQ(kissing_number(4), 24);
  EXPECT_EQ(kissing_number(8), 240);
}

TEST(Constants, PaperRatios) {
  EXPECT_DOUBLE_EQ(splitting_ratio(2), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(splitting_ratio(3), 4.0 / 5.0);
  EXPECT_DOUBLE_EQ(separator_exponent(2), 0.5);
  EXPECT_DOUBLE_EQ(separator_exponent(3), 2.0 / 3.0);
}

}  // namespace
}  // namespace sepdc::geo
