// Latency-SLO routing suite: the punt estimator's remaining-wait fix,
// negative-budget rejection, the idle fast-lane's byte-identical
// answers (delta tier included), admission-control shedding under
// concurrency, and the adaptive batching controller's bounds. Routing
// may only change latency and acceptance — never the bytes of an
// accepted answer, and never the stats reconciliation invariants
// documented in service_stats.hpp.
#include "service/query_broker.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <span>
#include <thread>
#include <vector>

#include "workload/generators.hpp"

namespace sepdc::service {
namespace {

using Pt = geo::Point<2>;
using std::chrono::microseconds;
using std::chrono::milliseconds;

std::vector<Pt> make_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return workload::generate<2>(workload::Kind::UniformCube, n, rng);
}

// ------------------------------------------------- punt estimator fix

// Headline bugfix regression: a queue that has already aged most of its
// flush interval only makes a new arrival wait out the *remainder*. A
// budget below the full interval but above the remaining wait must be
// batched — the old estimator charged every submission the full
// cfg_.flush_interval and punted exactly this query.
TEST(ServiceSlo, PreAgedQueueBatchesWithinRemainingWait) {
  auto points = make_points(300, 42);
  BrokerConfig cfg;
  cfg.max_batch = 1 << 20;              // never flush by size
  cfg.flush_interval = microseconds(800'000);
  cfg.index.seed = 7;
  QueryBroker<2> broker(std::span<const Pt>(points), cfg,
                        par::ThreadPool::global());

  std::thread aging([&] {
    broker.knn(points[0], 3);  // no deadline: waits out the whole flush
  });
  while (broker.stats().submitted == 0)
    std::this_thread::sleep_for(milliseconds(1));
  // Age the queue to ~400 ms of its 800 ms interval: the remaining wait
  // (~400 ms) fits the 600 ms budget; the full interval does not.
  std::this_thread::sleep_for(milliseconds(400));
  auto row = broker.knn(points[1], 3, microseconds(600'000));
  aging.join();
  EXPECT_EQ(row.size(), 3u);

  auto s = broker.stats();
  EXPECT_EQ(s.submitted, 2u);
  EXPECT_EQ(s.punted, 0u);  // full-interval charging would punt here
  EXPECT_EQ(s.batched, 2u);
  EXPECT_EQ(s.queue_wait.count(), s.batched);
}

// ------------------------------------------------- budget validation

TEST(ServiceSlo, NegativeBudgetRejectedBeforeAccounting) {
  auto points = make_points(64, 43);
  BrokerConfig cfg;
  cfg.max_batch = 1;
  cfg.index.seed = 3;
  QueryBroker<2> broker(std::span<const Pt>(points), cfg,
                        par::ThreadPool::global());

  auto expect_budget_error = [](auto&& call) {
    try {
      call();
      FAIL() << "negative budget must throw QueryError";
    } catch (const QueryError& e) {
      EXPECT_EQ(e.field(), "budget");
    }
  };
  expect_budget_error(
      [&] { broker.knn(points[0], 3, microseconds(-5)); });
  expect_budget_error(
      [&] { broker.radius(points[0], 0.1, microseconds(-1)); });
  expect_budget_error([&] {
    broker.bulk_knn(std::span<const Pt>(points).subspan(0, 4), 3,
                    microseconds(-100));
  });
  expect_budget_error([&] {
    broker.bulk_radius(std::span<const Pt>(points).subspan(0, 4), 0.1,
                       microseconds(-7));
  });

  // Rejected at the door: no counter moved, nothing was enqueued.
  auto s = broker.stats();
  EXPECT_EQ(s.submitted, 0u);
  EXPECT_EQ(s.knn_submitted, 0u);
  EXPECT_EQ(s.radius_submitted, 0u);
  EXPECT_EQ(s.batched, 0u);
  EXPECT_EQ(s.punted, 0u);
  EXPECT_EQ(s.fast_lane, 0u);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_EQ(s.class_interactive, 0u);
  EXPECT_EQ(s.class_bulk, 0u);

  // Only kNoDeadline exactly means "no deadline": a zero budget is
  // accepted and never punts.
  auto row = broker.knn(points[0], 3, QueryBroker<2>::kNoDeadline);
  EXPECT_EQ(row.size(), 3u);
  s = broker.stats();
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.punted, 0u);
}

// ----------------------------------------------------- class defaults

TEST(ServiceSlo, ClassDefaultBudgetApplies) {
  auto points = make_points(200, 44);
  BrokerConfig cfg;
  cfg.max_batch = 1 << 20;
  cfg.flush_interval = microseconds(10'000);
  cfg.index.seed = 5;
  cfg.slo.interactive_budget = microseconds(1);
  QueryBroker<2> broker(std::span<const Pt>(points), cfg,
                        par::ThreadPool::global());

  // Default-budget routing: an interactive query with no explicit
  // budget inherits the 1 us class default, which cannot survive a
  // 10 ms flush wait — it punts.
  auto row = broker.knn(points[0], 3);
  EXPECT_EQ(row.size(), 3u);
  auto s = broker.stats();
  EXPECT_EQ(s.punted, 1u);
  EXPECT_EQ(s.class_interactive, 1u);

  // Bulk has no class default here, so kNoDeadline stays "no deadline":
  // batched after the flush interval, never punted.
  auto rows = broker.bulk_knn(std::span<const Pt>(points).subspan(0, 4), 3);
  EXPECT_EQ(rows.size(), 4u);
  s = broker.stats();
  EXPECT_EQ(s.punted, 1u);
  EXPECT_EQ(s.batched, 4u);
  EXPECT_EQ(s.class_bulk, 4u);
  EXPECT_EQ(s.batched + s.punted + s.fast_lane, s.submitted);
}

// --------------------------------------------------------- fast lane

// Differential: with the fast lane on, an idle broker answers
// interactive queries inline — and the rows must be byte-identical to
// the batched broker's, including the (dist2, id) tie order and the
// delta tier (inserts visible, removed ids masked).
TEST(ServiceSlo, FastLaneMatchesBatchedAnswersWithLiveUpdates) {
  const std::size_t n = 400, k = 4;
  auto points = make_points(n, 45);
  std::span<const Pt> span(points);

  BrokerConfig base_cfg;
  base_cfg.max_batch = 16;
  base_cfg.flush_interval = microseconds(200);
  base_cfg.index.seed = 11;
  BrokerConfig fast_cfg = base_cfg;
  fast_cfg.slo.fast_lane = true;

  auto& pool = par::ThreadPool::global();
  QueryBroker<2> batched(span, base_cfg, pool);
  QueryBroker<2> fast(span, fast_cfg, pool);

  // Identical live mutations on both sides: tombstone some base ids,
  // insert fresh ones — fast-lane answers must see the same live set.
  Rng urng(450);
  std::vector<Pt> extra;
  for (std::uint32_t i = 0; i < 30; ++i)
    extra.push_back({{urng.uniform(0.0, 1.0), urng.uniform(0.0, 1.0)}});
  for (auto* b : {&batched, &fast}) {
    for (std::uint32_t id = 0; id < 20; ++id) b->remove(id);
    for (std::uint32_t i = 0; i < extra.size(); ++i)
      b->insert(1000 + i, extra[i]);
  }

  const std::size_t nq = 150;
  for (std::size_t i = 0; i < nq; ++i) {
    auto a = batched.knn(points[i], k, QueryBroker<2>::kNoDeadline,
                         static_cast<std::uint32_t>(i));
    auto b = fast.knn(points[i], k, QueryBroker<2>::kNoDeadline,
                      static_cast<std::uint32_t>(i));
    ASSERT_EQ(a.size(), b.size()) << "row " << i;
    for (std::size_t s = 0; s < a.size(); ++s) {
      EXPECT_EQ(a[s].index, b[s].index) << "row " << i << " slot " << s;
      EXPECT_DOUBLE_EQ(a[s].dist2, b[s].dist2)
          << "row " << i << " slot " << s;
    }
    auto ra = batched.radius(points[i], 0.05);
    auto rb = fast.radius(points[i], 0.05);
    ASSERT_EQ(ra.size(), rb.size()) << "radius row " << i;
    for (std::size_t s = 0; s < ra.size(); ++s) {
      EXPECT_EQ(ra[s].first, rb[s].first) << "radius " << i << "/" << s;
      EXPECT_DOUBLE_EQ(ra[s].second, rb[s].second)
          << "radius " << i << "/" << s;
    }
  }

  // A single-threaded client never finds the fast broker busy: every
  // interactive query took the lane, none were queued or punted.
  auto sf = fast.stats();
  EXPECT_EQ(sf.fast_lane, 2 * nq);
  EXPECT_EQ(sf.batched, 0u);
  EXPECT_EQ(sf.punted, 0u);
  EXPECT_EQ(sf.batched + sf.punted + sf.fast_lane, sf.submitted);
  EXPECT_EQ(sf.fast_lane_latency.count(), sf.fast_lane);

  auto sb = batched.stats();
  EXPECT_EQ(sb.fast_lane, 0u);
  EXPECT_EQ(sb.batched, 2 * nq);

  // Bulk-class traffic never takes the lane, even on an idle broker.
  auto rows = fast.bulk_knn(span.subspan(0, 8), k);
  EXPECT_EQ(rows.size(), 8u);
  sf = fast.stats();
  EXPECT_EQ(sf.fast_lane, 2 * nq);
  EXPECT_EQ(sf.batched, 8u);
  EXPECT_EQ(sf.class_bulk, 8u);
}

// ----------------------------------------------------------- shedding

// Concurrency: bulk-class requests shed by admission control increment
// only `shed` and surface as QueryError("overload"); interactive
// traffic keeps flowing. At quiescence the books balance exactly:
// attempts == submitted + shed, batched + punted + fast_lane ==
// submitted — shedding can never corrupt the reconciliation.
TEST(ServiceSlo, ShedRequestsReconcileUnderConcurrency) {
  const std::size_t n = 300, k = 3;
  auto points = make_points(n, 46);
  std::span<const Pt> span(points);
  BrokerConfig cfg;
  cfg.max_batch = 32;
  cfg.flush_interval = microseconds(100);
  cfg.index.seed = 13;
  // Microscopic budget multiple: once the EWMA cost estimate is warm,
  // every bulk request with a budget sheds deterministically.
  cfg.slo.shed_factor = 1e-6;
  QueryBroker<2> broker(span, cfg, par::ThreadPool::global());

  // Warm the estimator through interactive (never-shed) traffic.
  for (std::size_t i = 0; i < 48; ++i) broker.knn(points[i], k);
  const std::size_t warm = 48;
  ASSERT_GT(broker.stats().est_batch_us_per_query, 0.0);

  constexpr int kBulkThreads = 3;
  constexpr int kInteractiveThreads = 3;
  constexpr int kPerThread = 20;
  constexpr std::size_t kChunk = 8;
  std::atomic<std::size_t> shed_queries{0};
  std::atomic<std::size_t> answered_queries{0};
  std::atomic<std::size_t> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kBulkThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto chunk = span.subspan(((t * kPerThread + i) * kChunk) %
                                      (n - kChunk),
                                  kChunk);
        try {
          auto rows = broker.bulk_knn(chunk, k, microseconds(5'000));
          for (const auto& row : rows)
            if (row.size() != k) wrong.fetch_add(1);
          answered_queries.fetch_add(kChunk);
        } catch (const QueryError& e) {
          if (e.field() != "overload") wrong.fetch_add(1);
          shed_queries.fetch_add(kChunk);
        }
      }
    });
  }
  for (int t = 0; t < kInteractiveThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto row = broker.knn(points[(t * kPerThread + i) % n], k);
        if (row.size() != k) wrong.fetch_add(1);
        answered_queries.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_GT(shed_queries.load(), 0u);
  auto s = broker.stats();
  EXPECT_EQ(s.shed, shed_queries.load());
  // Only the bulk class shed here, and the class split partitions shed.
  EXPECT_EQ(s.shed_bulk, s.shed);
  EXPECT_EQ(s.shed_interactive, 0u);
  EXPECT_EQ(s.shed, s.shed_interactive + s.shed_bulk);
  EXPECT_EQ(s.submitted, warm + answered_queries.load());
  EXPECT_EQ(s.submitted + s.shed,
            warm + answered_queries.load() + shed_queries.load());
  EXPECT_EQ(s.batched + s.punted + s.fast_lane, s.submitted);
  EXPECT_EQ(s.knn_answered, s.knn_submitted);
  EXPECT_EQ(s.queue_wait.count(), s.batched);
  EXPECT_EQ(s.punt_latency.count(), s.punted);
  EXPECT_EQ(s.fast_lane_latency.count(), s.fast_lane);
}

// --------------------------------------------------------- controller

// With the target far below any achievable queue wait, every control
// window overshoots: the controller must walk both knobs down and stop
// exactly at the configured floor — never below.
TEST(ServiceSlo, AdaptiveControllerTightensToFloor) {
  auto points = make_points(200, 47);
  BrokerConfig cfg;
  cfg.max_batch = 64;
  cfg.flush_interval = microseconds(200);
  cfg.index.seed = 17;
  cfg.slo.adaptive = true;
  cfg.slo.min_flush_interval = microseconds(25);
  cfg.slo.max_flush_interval = microseconds(400);
  cfg.slo.min_batch = 2;
  cfg.slo.max_batch = 64;
  cfg.slo.target_queue_wait = microseconds(1);  // unreachable: overshoot
  cfg.slo.control_period = 2;
  QueryBroker<2> broker(std::span<const Pt>(points), cfg,
                        par::ThreadPool::global());

  EXPECT_EQ(broker.current_flush_interval(), microseconds(200));
  EXPECT_EQ(broker.current_max_batch(), 64u);
  for (std::size_t i = 0; i < 60; ++i) broker.knn(points[i % 200], 3);

  auto s = broker.stats();
  EXPECT_GT(s.controller_updates, 0u);
  EXPECT_GT(s.controller_tighten, 0u);
  EXPECT_EQ(broker.current_flush_interval(), microseconds(25));
  EXPECT_EQ(broker.current_max_batch(), 2u);
  EXPECT_EQ(s.cur_flush_interval_us, 25u);
  EXPECT_EQ(s.cur_max_batch, 2u);
  // The configured values are immutable; only the operating point moved.
  EXPECT_EQ(broker.config().flush_interval, microseconds(200));
  EXPECT_EQ(broker.config().max_batch, 64u);
}

// ------------------------------------------- budget-less bulk backstop

// Regression: budget-less bulk traffic used to bypass admission control
// entirely — shed pricing only looked at requests that carry a budget,
// so a misbehaving bulk client with no deadline could grow the pending
// queue without bound: no counter moved, no error surfaced, and
// interactive traffic starved behind the backlog. The queue-depth
// backstop sheds budget-less bulk with QueryError("overload") before
// any counter moves once the pending queue would exceed
// bulk_queue_backstop.
TEST(ServiceSlo, BudgetlessBulkBackstopSheds) {
  const std::size_t n = 200, k = 3;
  auto points = make_points(n, 49);
  std::span<const Pt> span(points);
  BrokerConfig cfg;
  cfg.max_batch = 1024;  // the size trigger never fires
  cfg.flush_interval = microseconds(10'000'000);  // flusher stalled
  cfg.index.seed = 23;
  cfg.slo.bulk_queue_backstop = 20;
  std::vector<std::thread> helpers;
  std::atomic<std::size_t> answered{0};
  {
    QueryBroker<2> broker(span, cfg, par::ThreadPool::global());
    // Two budget-less bulk submissions of 8 park in the stalled queue
    // (8 and 16 pending both fit under the backstop of 20); they block
    // until the shutdown drain answers them.
    for (int t = 0; t < 2; ++t) {
      helpers.emplace_back([&, t] {
        auto rows =
            broker.bulk_knn(span.subspan(8 * t, 8), k);
        for (const auto& row : rows)
          if (row.size() == k) answered.fetch_add(1);
      });
    }
    while (broker.stats().submitted < 16) std::this_thread::yield();

    // 16 pending + 8 more crosses the backstop: shed at the door.
    try {
      broker.bulk_knn(span.subspan(16, 8), k);
      FAIL() << "budget-less bulk over the backstop did not shed";
    } catch (const QueryError& e) {
      EXPECT_EQ(e.field(), "overload");
    }
    auto s = broker.stats();
    EXPECT_EQ(s.submitted, 16u) << "shed request moved submitted";
    EXPECT_EQ(s.shed, 8u);
    EXPECT_EQ(s.shed_bulk, 8u);
    EXPECT_EQ(s.shed_interactive, 0u);
    EXPECT_EQ(s.shed, s.shed_interactive + s.shed_bulk);
    // Destruction drains the queue: the parked requests are answered,
    // not lost (flush_by_stop), so the books balance at quiescence.
  }
  for (auto& t : helpers) t.join();
  EXPECT_EQ(answered.load(), 16u);
}

// ------------------------------------------- interactive cost shedding

// Regression: interactive traffic could never shed — admission pricing
// only applied to the bulk class, so a hopeless interactive request
// (estimated cost far beyond its budget) waited out the queue anyway,
// missed its deadline, and wasted a batch slot doing it. With
// interactive_shed_factor set, admission prices the request against the
// EWMA batch-cost estimate and fails fast instead.
TEST(ServiceSlo, InteractiveRequestsShedByCost) {
  const std::size_t n = 300, k = 3;
  auto points = make_points(n, 50);
  BrokerConfig cfg;
  cfg.max_batch = 32;
  cfg.flush_interval = microseconds(100);
  cfg.index.seed = 29;
  cfg.slo.interactive_shed_factor = 1e-6;
  QueryBroker<2> broker(std::span<const Pt>(points), cfg,
                        par::ThreadPool::global());

  // Warm the estimator budget-less: without a budget there is nothing
  // to price against, so these can never shed.
  for (std::size_t i = 0; i < 48; ++i) broker.knn(points[i], k);
  ASSERT_GT(broker.stats().est_batch_us_per_query, 0.0);
  const auto before = broker.stats();

  // A 1 us budget against a warm (microseconds-per-query) estimate and
  // a microscopic factor: deterministically hopeless.
  try {
    broker.knn(points[0], k, microseconds(1));
    FAIL() << "hopeless interactive request did not shed";
  } catch (const QueryError& e) {
    EXPECT_EQ(e.field(), "overload");
  }
  auto s = broker.stats();
  EXPECT_EQ(s.shed, before.shed + 1);
  EXPECT_EQ(s.shed_interactive, 1u);
  EXPECT_EQ(s.shed_bulk, 0u);
  EXPECT_EQ(s.shed, s.shed_interactive + s.shed_bulk);
  EXPECT_EQ(s.submitted, before.submitted) << "shed moved submitted";
  EXPECT_EQ(s.batched + s.punted + s.fast_lane, s.submitted);

  // Budget-less interactive traffic keeps flowing.
  EXPECT_EQ(broker.knn(points[1], k).size(), k);
}

// ----------------------------------------- controller under compaction

// Regression: the AIMD controller was blind to rebuild/compaction
// pressure — while a compaction monopolized the pool, the only signal
// was the queue-wait histogram, which lags a full control window, so
// the controller held relaxed knobs through the thing it most needed to
// tighten for. Now any in-flight rebuild or compaction tightens
// pre-emptively (counted as controller_pressure_tighten), and the knobs
// regrow once the pressure clears.
TEST(ServiceSlo, ControllerTightensUnderCompactionPressure) {
  auto points = make_points(200, 51);
  BrokerConfig cfg;
  cfg.max_batch = 64;
  cfg.flush_interval = microseconds(200);
  cfg.index.seed = 31;
  cfg.delta_compaction_threshold = 4;
  cfg.slo.adaptive = true;
  cfg.slo.min_flush_interval = microseconds(25);
  cfg.slo.max_flush_interval = microseconds(400);
  cfg.slo.min_batch = 2;
  cfg.slo.max_batch = 64;
  // A target no workload here can overshoot: absent pressure the
  // controller could only ever relax, so any tightening below is
  // attributable to the pressure signal alone.
  cfg.slo.target_queue_wait = microseconds(1'000'000);
  cfg.slo.control_period = 1;
  // Zero-worker pool: a submitted compaction parks in the queue until
  // someone helping-waits on it, holding compactions_in_flight high for
  // exactly as long as the test wants. Queries still flow — batch
  // kernels caller-help.
  par::ThreadPool pool(1);
  QueryBroker<2> broker(std::span<const Pt>(points), cfg, pool);

  // Arm the pressure: the 4th pending update seals a compaction job
  // onto the parked pool.
  for (std::uint32_t i = 0; i < 6; ++i)
    broker.insert(10000 + i, points[i]);

  // Every flush retunes (control_period 1); the pressure branch halves
  // both knobs down to the configured floor — never below.
  for (std::size_t i = 0; i < 40; ++i) broker.knn(points[i % 200], 3);
  auto s = broker.stats();
  EXPECT_GT(s.controller_pressure_tighten, 0u);
  EXPECT_GT(s.controller_tighten, 0u);
  EXPECT_EQ(broker.current_flush_interval(), microseconds(25));
  EXPECT_EQ(broker.current_max_batch(), 2u);
  EXPECT_EQ(broker.config().flush_interval, microseconds(200));

  // Drain runs the parked compaction on this thread (helping wait);
  // pressure clears and the far-away target lets the knobs regrow.
  broker.drain_rebuilds();
  EXPECT_EQ(broker.stats().compactions, 1u);
  for (std::size_t i = 0; i < 40; ++i) broker.knn(points[i % 200], 3);
  s = broker.stats();
  EXPECT_GT(s.controller_relax, 0u);
  EXPECT_GT(broker.current_flush_interval(), microseconds(25));
  EXPECT_GT(broker.current_max_batch(), 2u);
}

// Mirror image: with the target far above every observed wait, the
// controller regrows both knobs and stops exactly at the ceiling.
TEST(ServiceSlo, AdaptiveControllerRelaxesToCeiling) {
  auto points = make_points(200, 48);
  BrokerConfig cfg;
  cfg.max_batch = 16;
  cfg.flush_interval = microseconds(50);
  cfg.index.seed = 19;
  cfg.slo.adaptive = true;
  cfg.slo.min_flush_interval = microseconds(25);
  cfg.slo.max_flush_interval = microseconds(200);
  cfg.slo.min_batch = 2;
  cfg.slo.max_batch = 128;
  cfg.slo.target_queue_wait = microseconds(1'000'000);  // undershoot
  cfg.slo.control_period = 2;
  QueryBroker<2> broker(std::span<const Pt>(points), cfg,
                        par::ThreadPool::global());

  for (std::size_t i = 0; i < 60; ++i) broker.knn(points[i % 200], 3);

  auto s = broker.stats();
  EXPECT_GT(s.controller_relax, 0u);
  EXPECT_EQ(broker.current_flush_interval(), microseconds(200));
  EXPECT_EQ(broker.current_max_batch(), 128u);
  EXPECT_EQ(s.cur_flush_interval_us, 200u);
  EXPECT_EQ(s.cur_max_batch, 128u);
}

}  // namespace
}  // namespace sepdc::service
