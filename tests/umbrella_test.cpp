// Compiles the umbrella header and exercises a cross-module pipeline
// through it — guards the public API surface against include rot.
#include "sepdc.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sepdc {
namespace {

TEST(Umbrella, EndToEndPipeline) {
  Rng rng(1);
  auto points = workload::gaussian_clusters<2>(1200, 4, 0.02, rng);
  std::span<const geo::Point<2>> span(points);
  auto& pool = par::ThreadPool::global();

  // Graph via the one-call API.
  core::Config cfg;
  auto out = core::build_knn_graph<2>(span, 3, cfg, pool);
  EXPECT_EQ(out.graph.vertex_count(), 1200u);

  // Serialize / reload.
  std::stringstream buffer;
  ASSERT_TRUE(knn::save_result(buffer, out.knn));
  knn::KnnResult reloaded;
  ASSERT_TRUE(knn::load_result(buffer, reloaded));
  EXPECT_EQ(reloaded.neighbors, out.knn.neighbors);

  // Spatial index over the same points.
  core::SeparatorIndexConfig icfg;
  core::SeparatorIndex<2> index(span, icfg, pool);
  EXPECT_GT(index.count_in_ball(points[0], 0.1), 0u);

  // A separator drawn through the public sampler.
  separator::SphereSeparatorSampler<2> sampler(span, rng);
  bool drew = false;
  for (int t = 0; t < 20 && !drew; ++t)
    drew = sampler.draw(rng).has_value();
  EXPECT_TRUE(drew);

  // Model-cost sanity through the metered ops.
  pvm::Machine machine{pool, {}};
  auto [sum, cost] = pvm::vreduce(
      machine, 100, 0, [](std::size_t i) { return static_cast<int>(i); },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(sum, 4950);
  EXPECT_EQ(cost.depth, 1u);
}

}  // namespace
}  // namespace sepdc
