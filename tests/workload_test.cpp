#include "workload/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "geometry/aabb.hpp"

namespace sepdc::workload {
namespace {

TEST(Workload, UniformCubeBoundsAndCount) {
  Rng rng(1);
  auto pts = uniform_cube<3>(500, rng);
  ASSERT_EQ(pts.size(), 500u);
  for (const auto& p : pts)
    for (int i = 0; i < 3; ++i) {
      EXPECT_GE(p[i], 0.0);
      EXPECT_LT(p[i], 1.0);
    }
}

TEST(Workload, UniformBallInsideUnitBall) {
  Rng rng(2);
  auto pts = uniform_ball<4>(300, rng);
  ASSERT_EQ(pts.size(), 300u);
  for (const auto& p : pts) EXPECT_LE(geo::norm2(p), 1.0 + 1e-12);
}

TEST(Workload, GaussianClustersAreClustered) {
  Rng rng(3);
  auto pts = gaussian_clusters<2>(2000, 4, 0.01, rng);
  ASSERT_EQ(pts.size(), 2000u);
  // With σ=0.01 and 4 clusters, the average nearest-neighbor distance is
  // far below the uniform expectation; proxy: most points have another
  // point within 4σ.
  std::size_t close = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (j != i && geo::distance(pts[i], pts[j]) < 0.04) {
        ++close;
        break;
      }
    }
  }
  EXPECT_GT(close, 190u);
}

TEST(Workload, GridJitterDistinctCells) {
  Rng rng(4);
  auto pts = grid_jitter<2>(100, 0.0, rng);  // no jitter: exact centers
  std::set<std::pair<long, long>> cells;
  for (const auto& p : pts)
    cells.insert({std::lround(p[0] * 1000), std::lround(p[1] * 1000)});
  EXPECT_EQ(cells.size(), 100u);
}

TEST(Workload, SphereShellRadii) {
  Rng rng(5);
  auto pts = sphere_shell<3>(400, 0.02, rng);
  for (const auto& p : pts) {
    double r = geo::norm(p);
    EXPECT_GT(r, 0.98);
    EXPECT_LT(r, 1.02);
  }
}

TEST(Workload, AdversarialSlabIsThin) {
  Rng rng(6);
  auto pts = adversarial_slab<3>(1000, 1e-5, rng);
  auto box = geo::Aabb<3>::of(std::span<const geo::Point<3>>(pts));
  // Slab coordinate range tiny relative to the others.
  EXPECT_LT(box.hi[0] - box.lo[0], 1e-3);
  EXPECT_GT(box.hi[1] - box.lo[1], 0.9);
}

TEST(Workload, NearCollinearHugsDiagonal) {
  Rng rng(7);
  auto pts = near_collinear<2>(500, 1e-4, rng);
  for (const auto& p : pts)
    EXPECT_NEAR(p[0], p[1], 0.01);  // both ≈ t/√2
}

TEST(Workload, WithDuplicatesCreatesRepeats) {
  Rng rng(8);
  auto pts = with_duplicates<2>(uniform_cube<2>(1000, rng), 0.5, rng);
  std::set<std::pair<long long, long long>> uniq;
  for (const auto& p : pts)
    uniq.insert({std::llround(p[0] * 1e12), std::llround(p[1] * 1e12)});
  EXPECT_LT(uniq.size(), pts.size());
}

TEST(Workload, KindRoundtrip) {
  for (Kind k : {Kind::UniformCube, Kind::GaussianClusters,
                 Kind::AdversarialSlab, Kind::Duplicates}) {
    EXPECT_EQ(parse_kind(kind_name(k)), k);
  }
}

TEST(Workload, GenerateDispatchProducesRequestedSize) {
  Rng rng(9);
  for (Kind k : {Kind::UniformCube, Kind::UniformBall, Kind::GaussianClusters,
                 Kind::GridJitter, Kind::SphereShell, Kind::AdversarialSlab,
                 Kind::NearCollinear, Kind::Duplicates}) {
    auto pts = generate<2>(k, 128, rng);
    EXPECT_EQ(pts.size(), 128u) << kind_name(k);
  }
}

}  // namespace
}  // namespace sepdc::workload
