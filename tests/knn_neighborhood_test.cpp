// k-neighborhood systems and the Density Lemma (Lemma 2.1).
#include "knn/neighborhood.hpp"

#include <gtest/gtest.h>

#include "geometry/constants.hpp"
#include "knn/brute_force.hpp"
#include "workload/generators.hpp"

namespace sepdc::knn {
namespace {

TEST(Neighborhood, RadiiAreKthNeighborDistances) {
  std::vector<geo::Point<2>> pts{
      {{0.0, 0.0}}, {{1.0, 0.0}}, {{3.0, 0.0}}, {{6.0, 0.0}}};
  auto r = brute_force<2>(std::span<const geo::Point<2>>(pts), 2);
  auto balls =
      neighborhood_system<2>(std::span<const geo::Point<2>>(pts), r);
  ASSERT_EQ(balls.size(), 4u);
  EXPECT_DOUBLE_EQ(balls[0].radius, 3.0);  // 0: neighbors at 1, 3
  EXPECT_DOUBLE_EQ(balls[1].radius, 2.0);  // 1: neighbors at 0, 3
  EXPECT_DOUBLE_EQ(balls[2].radius, 3.0);  // 3: neighbors at 1(d2), 6(d3)... center 3: dists 3,2,3 -> k=2 radius 3
  EXPECT_DOUBLE_EQ(balls[3].radius, 5.0);  // 6: dists 6,5,3 -> k=2 radius 5
}

TEST(Neighborhood, BallInteriorContainsAtMostKMinusOnePoints) {
  // The defining property of the k-neighborhood ball.
  Rng rng(51);
  for (std::size_t k : {1u, 2u, 4u}) {
    auto pts = workload::uniform_cube<2>(300, rng);
    std::span<const geo::Point<2>> span(pts);
    auto r = brute_force<2>(span, k);
    auto balls = neighborhood_system<2>(span, r);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      // Compare against the exact squared radius: roundtripping through
      // sqrt can inflate the ball by one ulp and pull boundary points in.
      double radius2 = r.radius2(i);
      std::size_t inside = 0;
      for (std::size_t j = 0; j < pts.size(); ++j) {
        if (j != i && geo::distance2(pts[i], pts[j]) < radius2) ++inside;
      }
      EXPECT_LE(inside, k - 1) << "ball " << i << " k=" << k;
    }
  }
}

TEST(Neighborhood, PlyAt) {
  std::vector<geo::Ball<2>> balls{
      {{{0.0, 0.0}}, 1.0}, {{{0.5, 0.0}}, 1.0}, {{{5.0, 0.0}}, 0.1}};
  EXPECT_EQ(ply_at<2>(balls, geo::Point<2>{{0.25, 0.0}}), 2u);
  EXPECT_EQ(ply_at<2>(balls, geo::Point<2>{{5.0, 0.0}}), 1u);
  EXPECT_EQ(ply_at<2>(balls, geo::Point<2>{{10.0, 0.0}}), 0u);
  // Boundary is not interior.
  EXPECT_EQ(ply_at<2>(balls, geo::Point<2>{{1.0, 0.0}}), 1u);
}

class DensityLemma : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DensityLemma, PlyBoundedByKissingTimesK) {
  const std::size_t k = GetParam();
  Rng rng(60 + k);
  auto& pool = par::ThreadPool::global();
  for (auto kind : {workload::Kind::UniformCube,
                    workload::Kind::GaussianClusters,
                    workload::Kind::NearCollinear}) {
    auto pts = workload::generate<2>(kind, 800, rng);
    std::span<const geo::Point<2>> span(pts);
    auto r = brute_force_parallel<2>(pool, span, k);
    auto balls = neighborhood_system<2>(span, r);
    std::size_t ply = max_ply<2>(balls, span);
    EXPECT_LE(ply, static_cast<std::size_t>(geo::kissing_number(2)) * k)
        << workload::kind_name(kind) << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(KValues, DensityLemma,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(Neighborhood, MaxPlyAtCentersMatchesBruteProbe) {
  Rng rng(71);
  auto pts = workload::uniform_cube<2>(500, rng);
  std::span<const geo::Point<2>> span(pts);
  auto& pool = par::ThreadPool::global();
  auto r = brute_force_parallel<2>(pool, span, 3);
  auto balls = neighborhood_system<2>(span, r);
  std::size_t fast = max_ply_at_centers<2>(balls, pool);
  std::size_t slow = max_ply<2>(balls, span);
  EXPECT_EQ(fast, slow);
}

TEST(Neighborhood, InfiniteRadiusWhenTooFewPoints) {
  std::vector<geo::Point<2>> pts{{{0.0, 0.0}}, {{1.0, 0.0}}};
  auto r = brute_force<2>(std::span<const geo::Point<2>>(pts), 3);
  auto balls =
      neighborhood_system<2>(std::span<const geo::Point<2>>(pts), r);
  EXPECT_TRUE(std::isinf(balls[0].radius));
}

}  // namespace
}  // namespace sepdc::knn
