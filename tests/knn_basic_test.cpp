#include <gtest/gtest.h>

#include <limits>

#include "knn/brute_force.hpp"
#include "knn/graph.hpp"
#include "knn/result.hpp"
#include "knn/topk.hpp"
#include "workload/generators.hpp"

namespace sepdc::knn {
namespace {

TEST(TopK, KeepsSmallestK) {
  TopK t(3);
  for (std::uint32_t i = 0; i < 10; ++i)
    t.offer(static_cast<double>(10 - i), i);  // distances 10..1
  auto sorted = t.take_sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_DOUBLE_EQ(sorted[0].dist2, 1.0);
  EXPECT_DOUBLE_EQ(sorted[2].dist2, 3.0);
}

TEST(TopK, WorstDistInfiniteUntilFull) {
  TopK t(2);
  EXPECT_EQ(t.worst_dist2(), std::numeric_limits<double>::infinity());
  t.offer(5.0, 0);
  EXPECT_EQ(t.worst_dist2(), std::numeric_limits<double>::infinity());
  t.offer(3.0, 1);
  EXPECT_DOUBLE_EQ(t.worst_dist2(), 5.0);
  t.offer(1.0, 2);
  EXPECT_DOUBLE_EQ(t.worst_dist2(), 3.0);
}

TEST(TopK, DeterministicTieBreakByIndex) {
  TopK a(2), b(2);
  a.offer(1.0, 5);
  a.offer(1.0, 3);
  a.offer(1.0, 7);
  b.offer(1.0, 7);
  b.offer(1.0, 5);
  b.offer(1.0, 3);
  auto sa = a.take_sorted();
  auto sb = b.take_sorted();
  ASSERT_EQ(sa.size(), 2u);
  EXPECT_EQ(sa[0].index, sb[0].index);
  EXPECT_EQ(sa[1].index, sb[1].index);
  EXPECT_EQ(sa[0].index, 3u);
  EXPECT_EQ(sa[1].index, 5u);
}

TEST(TopK, ZeroCapacity) {
  TopK t(0);
  t.offer(1.0, 0);
  EXPECT_EQ(t.size(), 0u);
}

TEST(KnnResult, PaddingSemantics) {
  auto r = KnnResult::empty(3, 2);
  EXPECT_EQ(r.count(0), 0u);
  EXPECT_TRUE(std::isinf(r.radius(0)));
  r.row_neighbors(0)[0] = 1;
  r.row_dist2(0)[0] = 4.0;
  EXPECT_EQ(r.count(0), 1u);
  EXPECT_TRUE(std::isinf(r.radius(0)));  // not full yet
  r.row_neighbors(0)[1] = 2;
  r.row_dist2(0)[1] = 9.0;
  EXPECT_EQ(r.count(0), 2u);
  EXPECT_DOUBLE_EQ(r.radius(0), 3.0);
}

TEST(BruteForce, TinyHandComputedCase) {
  std::vector<geo::Point<2>> pts{
      {{0.0, 0.0}}, {{1.0, 0.0}}, {{3.0, 0.0}}, {{7.0, 0.0}}};
  auto r = brute_force<2>(std::span<const geo::Point<2>>(pts), 2);
  EXPECT_EQ(r.row_neighbors(0)[0], 1u);  // 0 -> 1 (d=1), then 2 (d=3)
  EXPECT_EQ(r.row_neighbors(0)[1], 2u);
  EXPECT_DOUBLE_EQ(r.row_dist2(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(r.row_dist2(0)[1], 9.0);
  EXPECT_EQ(r.row_neighbors(3)[0], 2u);  // 7 -> 3 (d=4), then 1 (d=6)
  EXPECT_EQ(r.row_neighbors(3)[1], 1u);
}

TEST(BruteForce, FewerPointsThanKPads) {
  std::vector<geo::Point<2>> pts{{{0.0, 0.0}}, {{1.0, 0.0}}};
  auto r = brute_force<2>(std::span<const geo::Point<2>>(pts), 5);
  EXPECT_EQ(r.count(0), 1u);
  EXPECT_TRUE(std::isinf(r.radius(0)));
}

TEST(BruteForce, DuplicatePointsZeroDistance) {
  std::vector<geo::Point<2>> pts{{{1.0, 1.0}}, {{1.0, 1.0}}, {{1.0, 1.0}}};
  auto r = brute_force<2>(std::span<const geo::Point<2>>(pts), 2);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r.count(i), 2u);
    EXPECT_DOUBLE_EQ(r.radius(i), 0.0);
  }
}

TEST(BruteForce, ParallelMatchesSequential) {
  Rng rng(31);
  auto pts = workload::uniform_cube<3>(300, rng);
  auto seq = brute_force<3>(std::span<const geo::Point<3>>(pts), 4);
  auto& pool = par::ThreadPool::global();
  auto parl =
      brute_force_parallel<3>(pool, std::span<const geo::Point<3>>(pts), 4);
  EXPECT_EQ(seq.neighbors, parl.neighbors);
  EXPECT_EQ(seq.dist2, parl.dist2);
}

TEST(KnnGraph, Definition11Symmetry) {
  Rng rng(32);
  auto pts = workload::uniform_cube<2>(200, rng);
  auto r = brute_force<2>(std::span<const geo::Point<2>>(pts), 3);
  auto& pool = par::ThreadPool::global();
  auto g = KnnGraph::from_result(pool, r);
  EXPECT_EQ(g.vertex_count(), 200u);
  // Every directed k-NN relation appears as an undirected edge.
  for (std::size_t i = 0; i < 200; ++i) {
    for (std::uint32_t j : r.row_neighbors(i)) {
      if (j == KnnResult::kInvalid) break;
      EXPECT_TRUE(g.has_edge(static_cast<std::uint32_t>(i), j));
      EXPECT_TRUE(g.has_edge(j, static_cast<std::uint32_t>(i)));
    }
  }
}

TEST(KnnGraph, EdgeCountBounds) {
  Rng rng(33);
  const std::size_t n = 500, k = 2;
  auto pts = workload::uniform_cube<2>(n, rng);
  auto r = brute_force<2>(std::span<const geo::Point<2>>(pts), k);
  auto& pool = par::ThreadPool::global();
  auto g = KnnGraph::from_result(pool, r);
  // Between n*k/2 (all mutual) and n*k (no mutual) undirected edges.
  EXPECT_GE(g.edge_count(), n * k / 2);
  EXPECT_LE(g.edge_count(), n * k);
  EXPECT_GE(g.max_degree(), k);
}

TEST(KnnGraph, NoSelfLoopsAndSortedAdjacency) {
  Rng rng(34);
  auto pts = workload::uniform_cube<2>(100, rng);
  auto r = brute_force<2>(std::span<const geo::Point<2>>(pts), 2);
  auto& pool = par::ThreadPool::global();
  auto g = KnnGraph::from_result(pool, r);
  for (std::uint32_t v = 0; v < 100; ++v) {
    auto nbrs = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    for (auto w : nbrs) EXPECT_NE(w, v);
  }
}

TEST(KnnGraph, PaddedRowsProduceOnlyValidEdges) {
  // n - 1 < k: rows carry padding that must not become edges.
  std::vector<geo::Point<2>> pts{{{0.0, 0.0}}, {{1.0, 0.0}}};
  auto r = brute_force<2>(std::span<const geo::Point<2>>(pts), 5);
  auto g = KnnGraph::from_result(par::ThreadPool::global(), r);
  EXPECT_EQ(g.vertex_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(KnnGraph, ConnectedComponentsOfTwoClusters) {
  // Two tight, well-separated clusters with k=1 give >= 2 components.
  std::vector<geo::Point<2>> pts;
  Rng rng(35);
  for (int i = 0; i < 20; ++i)
    pts.push_back({{rng.uniform(0, 0.01), rng.uniform(0, 0.01)}});
  for (int i = 0; i < 20; ++i)
    pts.push_back({{100.0 + rng.uniform(0, 0.01), rng.uniform(0, 0.01)}});
  auto r = brute_force<2>(std::span<const geo::Point<2>>(pts), 1);
  auto& pool = par::ThreadPool::global();
  auto g = KnnGraph::from_result(pool, r);
  EXPECT_GE(g.component_count(), 2u);
}

}  // namespace
}  // namespace sepdc::knn
