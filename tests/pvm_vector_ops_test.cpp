#include "pvm/vector_ops.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "support/rng.hpp"

namespace sepdc::pvm {
namespace {

class VectorOps : public ::testing::Test {
 protected:
  par::ThreadPool pool{4};
  Machine machine{pool, CostConfig{}};
};

TEST_F(VectorOps, MapComputesAndCharges) {
  auto [squares, cost] = vmap<std::uint64_t>(
      machine, 1000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 1000u);
  EXPECT_EQ(squares[7], 49u);
  EXPECT_EQ(cost, map_cost(1000));
}

TEST_F(VectorOps, ReduceMatchesSequential) {
  auto [total, cost] = vreduce(
      machine, 5000, std::uint64_t{0}, [](std::size_t i) { return i; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(total, 5000ull * 4999 / 2);
  EXPECT_EQ(cost.depth, 1u);  // unit-scan model
}

TEST_F(VectorOps, ReduceChargesLogUnderLogModel) {
  Machine log_machine{pool, CostConfig{ScanModel::Log}};
  auto [total, cost] = vreduce(
      log_machine, 1 << 12, 0, [](std::size_t) { return 1; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(total, 1 << 12);
  EXPECT_EQ(cost.depth, 12u);
}

TEST_F(VectorOps, ScanMatchesSequential) {
  std::vector<int> in{3, 1, 4, 1, 5};
  auto [out, cost] =
      vscan(machine, in, 0, [](int a, int b) { return a + b; });
  EXPECT_EQ(out, (std::vector<int>{0, 3, 4, 8, 9}));
  EXPECT_EQ(cost.work, 5u);
  EXPECT_EQ(cost.depth, 1u);
}

TEST_F(VectorOps, PackFiltersAndCharges) {
  std::vector<int> in(100);
  std::iota(in.begin(), in.end(), 0);
  auto [odds, cost] = vpack(machine, in, [](int x) { return x % 2 == 1; });
  ASSERT_EQ(odds.size(), 50u);
  EXPECT_EQ(odds[0], 1);
  EXPECT_EQ(odds[49], 99);
  EXPECT_EQ(cost, pack_cost(100, machine.cost));
}

TEST_F(VectorOps, GatherPermutes) {
  std::vector<double> data{10.0, 20.0, 30.0};
  std::vector<std::uint32_t> idx{2, 0, 1, 2};
  auto [out, cost] = vgather(machine, data, idx);
  EXPECT_EQ(out, (std::vector<double>{30.0, 10.0, 20.0, 30.0}));
  EXPECT_EQ(cost, map_cost(4));
}

TEST_F(VectorOps, ComposedPipelineCostAddsUp) {
  // A pack-then-reduce pipeline: the ledger total must equal the sum of
  // the component charges (seq composition).
  Ledger ledger;
  std::vector<int> in(1000);
  std::iota(in.begin(), in.end(), 0);
  auto packed = vpack(machine, in, [](int x) { return x < 100; });
  ledger.charge(packed.cost);
  auto [sum, rcost] = vreduce(
      machine, packed.value.size(), 0,
      [&](std::size_t i) { return packed.value[i]; },
      [](int a, int b) { return a + b; });
  ledger.charge(rcost);
  EXPECT_EQ(sum, 99 * 100 / 2);
  EXPECT_EQ(ledger.total().depth,
            pack_cost(1000, machine.cost).depth +
                reduce_cost(100, machine.cost).depth);
}

TEST_F(VectorOps, EmptyInputs) {
  auto m = vmap<int>(machine, 0, [](std::size_t) { return 1; });
  EXPECT_TRUE(m.value.empty());
  std::vector<int> none;
  auto p = vpack(machine, none, [](int) { return true; });
  EXPECT_TRUE(p.value.empty());
  auto s = vscan(machine, none, 0, [](int a, int b) { return a + b; });
  EXPECT_TRUE(s.value.empty());
}

}  // namespace
}  // namespace sepdc::pvm
