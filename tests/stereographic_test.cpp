// The stereographic/cap machinery carries the whole separator algorithm;
// these tests pin down the invariants the derivations rely on.
#include "geometry/stereographic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/solve.hpp"
#include "support/rng.hpp"

namespace sepdc::geo {
namespace {

template <int D>
Point<D> random_point(Rng& rng, double scale = 3.0) {
  Point<D> p;
  for (int i = 0; i < D; ++i) p[i] = rng.uniform(-scale, scale);
  return p;
}

TEST(Stereographic, LiftLandsOnUnitSphere) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    auto p = random_point<3>(rng, 10.0);
    auto u = stereo_lift<3>(p);
    EXPECT_NEAR(norm(u), 1.0, 1e-12);
  }
}

TEST(Stereographic, LiftProjectRoundtrip2D) {
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    auto p = random_point<2>(rng);
    auto back = stereo_project<2>(stereo_lift<2>(p));
    EXPECT_NEAR(back[0], p[0], 1e-10);
    EXPECT_NEAR(back[1], p[1], 1e-10);
  }
}

TEST(Stereographic, OriginMapsToSouthPole) {
  Point<2> origin{};
  auto u = stereo_lift<2>(origin);
  EXPECT_NEAR(u[0], 0.0, 1e-15);
  EXPECT_NEAR(u[1], 0.0, 1e-15);
  EXPECT_NEAR(u[2], -1.0, 1e-15);
}

TEST(Stereographic, LargePointsApproachNorthPole) {
  Point<2> far{{1e8, 0.0}};
  auto u = stereo_lift<2>(far);
  EXPECT_NEAR(u[2], 1.0, 1e-7);
}

TEST(Dilation, IdentityAtLambdaOne) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    auto u = stereo_lift<3>(random_point<3>(rng));
    auto v = dilate<3>(u, 1.0);
    for (int i = 0; i <= 3; ++i) EXPECT_NEAR(v[i], u[i], 1e-12);
  }
}

TEST(Dilation, StaysOnSphereAndComposes) {
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    auto u = stereo_lift<2>(random_point<2>(rng));
    auto v = dilate<2>(u, 0.5);
    EXPECT_NEAR(norm(v), 1.0, 1e-12);
    auto w = dilate<2>(v, 2.0);  // δ_2 ∘ δ_0.5 = identity
    for (int i = 0; i <= 2; ++i) EXPECT_NEAR(w[i], u[i], 1e-10);
  }
}

// Core invariant: a point is on the pulled-back separator surface exactly
// when its lift satisfies the cap equation, and the Inner side matches the
// sign of the cap's affine form.
TEST(CapPullback, SurfaceAndSidesMatchCapSign) {
  Rng rng(5);
  int sphere_cases = 0, plane_cases = 0;
  for (int trial = 0; trial < 300; ++trial) {
    Cap<2> cap;
    double len = 0;
    do {
      for (int i = 0; i <= 2; ++i) cap.a[i] = rng.normal();
      len = norm(cap.a);
    } while (len < 1e-9);
    cap.a = cap.a / len;
    cap.b = rng.uniform(-0.8, 0.8);

    auto shape = cap_pullback<2>(cap);
    if (!shape) continue;  // cap misses the sphere
    (shape->is_sphere() ? sphere_cases : plane_cases)++;
    // Near-degenerate pullbacks (giant spheres) lose precision to
    // cancellation in |x-c|² - r²; side agreement is only asserted away
    // from that regime.
    if (shape->is_sphere() && shape->sphere().radius > 1e5) continue;

    for (int probe = 0; probe < 50; ++probe) {
      auto x = random_point<2>(rng, 4.0);
      double f = cap.evaluate(stereo_lift<2>(x));
      Side side = shape->classify(x);
      if (std::abs(f) > 1e-6) {
        EXPECT_EQ(side, f < 0 ? Side::Inner : Side::Outer)
            << "x=" << x << " f=" << f;
      }
    }
    // Points sampled on the surface satisfy the cap equation.
    if (shape->is_sphere()) {
      const auto& s = shape->sphere();
      for (int angle_i = 0; angle_i < 8; ++angle_i) {
        double t = angle_i * 0.7853981633974483;
        Point<2> on{{s.center[0] + s.radius * std::cos(t),
                     s.center[1] + s.radius * std::sin(t)}};
        EXPECT_NEAR(cap.evaluate(stereo_lift<2>(on)), 0.0, 1e-9);
      }
    }
  }
  EXPECT_GT(sphere_cases, 100);  // spheres dominate for random caps
}

TEST(CapPullback, GreatCircleThroughPoleGivesHyperplane) {
  // Cap normal orthogonal to e_D with b=0 passes through both poles.
  Cap<2> cap;
  cap.a = Point<3>{{1.0, 0.0, 0.0}};
  cap.b = 0.0;
  auto shape = cap_pullback<2>(cap);
  ASSERT_TRUE(shape.has_value());
  EXPECT_FALSE(shape->is_sphere());
  // Pulled-back hyperplane is {x_0 = 0}.
  EXPECT_EQ(shape->classify(Point<2>{{-1.0, 5.0}}), Side::Inner);
  EXPECT_EQ(shape->classify(Point<2>{{1.0, 5.0}}), Side::Outer);
}

TEST(CapPullback, CapMissingSphereReturnsNullopt) {
  Cap<2> cap;
  cap.a = Point<3>{{0.0, 0.0, 1.0}};
  cap.b = 2.0;  // plane z == 2 misses the unit sphere
  EXPECT_FALSE(cap_pullback<2>(cap).has_value());
}

TEST(CapPreimageRotation, MatchesForwardMap) {
  Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    // Random reflection via rotation_between of two random unit vectors.
    std::vector<double> f(4), t(4);
    double lf = 0, lt = 0;
    do {
      for (auto& x : f) x = rng.normal();
      lf = linalg::norm(f);
    } while (lf < 1e-9);
    do {
      for (auto& x : t) x = rng.normal();
      lt = linalg::norm(t);
    } while (lt < 1e-9);
    for (auto& x : f) x /= lf;
    for (auto& x : t) x /= lt;
    linalg::Matrix q = linalg::rotation_between(f, t);

    Cap<3> cap;
    for (int i = 0; i <= 3; ++i) cap.a[i] = rng.normal();
    cap.b = rng.uniform(-0.5, 0.5);
    Cap<3> pre = cap_preimage_rotation(cap, q);

    for (int probe = 0; probe < 20; ++probe) {
      auto u = stereo_lift<3>(random_point<3>(rng));
      // v = Q u.
      std::vector<double> uv(u.coords.begin(), u.coords.end());
      auto vv = q.apply(uv);
      Point<4> v;
      for (int i = 0; i <= 3; ++i) v[i] = vv[static_cast<std::size_t>(i)];
      EXPECT_NEAR(pre.evaluate(u), cap.evaluate(v), 1e-10);
    }
  }
}

TEST(CapPreimageDilation, MatchesForwardMap) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    double lambda = rng.uniform(0.2, 3.0);
    Cap<2> cap;
    for (int i = 0; i <= 2; ++i) cap.a[i] = rng.normal();
    cap.b = rng.uniform(-0.5, 0.5);
    Cap<2> pre = cap_preimage_dilation(cap, lambda);

    for (int probe = 0; probe < 20; ++probe) {
      auto u = stereo_lift<2>(random_point<2>(rng));
      auto v = dilate<2>(u, lambda);
      double fwd = cap.evaluate(v);
      double back = pre.evaluate(u);
      // The preimage form equals the forward form up to the positive factor
      // (1 + λ²|y|²)/(1 + |y|²); only the sign and zero set must agree.
      if (std::abs(fwd) > 1e-12 || std::abs(back) > 1e-12) {
        EXPECT_GT(fwd * back, -1e-12)
            << "sign mismatch: fwd=" << fwd << " back=" << back;
      }
      if (std::abs(fwd) < 1e-13) {
        EXPECT_NEAR(back, 0.0, 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace sepdc::geo
