// §4 probabilistic (a,b)-trees and the §6.4 duplication process.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/duplication.hpp"
#include "sim/prob_tree.hpp"

namespace sepdc::sim {
namespace {

TEST(ProbTree, ZeroLuckyWeightAllLuckyGivesZeroDepth) {
  // With unlucky_scale = 0 every node weighs 0 regardless of luck.
  Rng rng(1);
  AbTreeParams p;
  p.lucky_weight = 0;
  p.unlucky_scale = 0;
  EXPECT_EQ(sample_max_weighted_depth(1024, p, rng), 0u);
}

TEST(ProbTree, ConstantWeightGivesExactlyCLogN) {
  // lucky == unlucky == C makes RD deterministic: C per level.
  Rng rng(2);
  AbTreeParams p;
  p.lucky_weight = 3;
  p.unlucky_scale = 0;
  // Internal nodes: log2(n) levels (leaves weigh nothing).
  EXPECT_EQ(sample_max_weighted_depth(1 << 10, p, rng), 3u * 10u);
}

TEST(ProbTree, SingleLeafHasZeroDepth) {
  Rng rng(3);
  AbTreeParams p;
  EXPECT_EQ(sample_max_weighted_depth(1, p, rng), 0u);
}

TEST(ProbTree, TypicalDepthIsSmallWithHighProbability) {
  // Lemma 4.1's regime: a ≡ 0, b(m) = log m. RD(n) should be far below
  // the worst case Σ log(2^i) = Θ(log² n) and usually O(log n).
  Rng rng(4);
  const std::uint64_t n = 1 << 14;  // log n = 14
  AbTreeParams p;  // lucky 0, unlucky log m
  int trials = 200;
  int exceed = 0;
  double sum = 0;
  for (int t = 0; t < trials; ++t) {
    auto rd = sample_max_weighted_depth(n, p, rng);
    sum += static_cast<double>(rd);
    if (rd > 6 * 14) ++exceed;  // 2c log n with c = 3
  }
  EXPECT_LT(static_cast<double>(exceed) / trials, 0.05);
  EXPECT_LT(sum / trials, 60.0);  // average well below log² n = 196
}

TEST(ProbTree, DepthDistributionStochasticallyIncreasingInN) {
  Rng rng(5);
  AbTreeParams p;
  double small_mean = 0, large_mean = 0;
  for (int t = 0; t < 100; ++t) {
    small_mean += static_cast<double>(
        sample_max_weighted_depth(1 << 8, p, rng));
    large_mean += static_cast<double>(
        sample_max_weighted_depth(1 << 16, p, rng));
  }
  EXPECT_LT(small_mean, large_mean);
}

TEST(ProbTree, BoundFormulaDecaysInC) {
  double b1 = punting_lemma_bound(1 << 10, 2.0);
  double b2 = punting_lemma_bound(1 << 10, 4.0);
  EXPECT_GT(b1, b2);
  EXPECT_GT(punting_lemma_bound(1 << 10, 0.1), 1.0);  // vacuous at small c
}

TEST(ProbTree, RejectsNonPowerOfTwo) {
  Rng rng(6);
  AbTreeParams p;
  EXPECT_DEATH(sample_max_weighted_depth(1000, p, rng), "power of two");
}

TEST(Duplication, NoDuplicationWhenBetaHuge) {
  // β very large makes duplication probability ~0; with a balanced
  // adversary and α, total leaf weight stays near W + growth terms.
  Rng rng(7);
  DuplicationParams p;
  p.beta = 50.0;  // w^-50 ~ 0
  p.alpha = 0.5;
  auto out = sample_duplication_process(1000.0, 10, p, rng);
  EXPECT_EQ(out.duplications, 0u);
  // Each level adds at most 2^level * w^alpha overhead... total bounded.
  EXPECT_LT(out.total_leaf_weight, 10000.0);
  EXPECT_GE(out.total_leaf_weight, 1000.0);
}

TEST(Duplication, AlwaysDuplicateExplodesExponentially) {
  // β = 0 duplicates at every node: X = W · 2^K.
  Rng rng(8);
  DuplicationParams p;
  p.beta = 0.0;
  p.w_bar = 0.5;
  auto out = sample_duplication_process(16.0, 6, p, rng);
  EXPECT_DOUBLE_EQ(out.total_leaf_weight, 16.0 * 64.0);
  EXPECT_EQ(out.duplications, 63u);
}

TEST(Duplication, Lemma65RegimeStaysNearG) {
  // In the paper's parameter regime the total leaf weight is
  // O(g(W) log W) w.h.p.; test the empirical 95th percentile.
  Rng rng(9);
  DuplicationParams p;  // defaults are the paper's d=2 regime
  const double w = 4096.0;
  const std::uint64_t k = 12;
  double g = lemma65_g(w, static_cast<double>(k), p.alpha, 0.1);
  std::vector<double> samples;
  for (int t = 0; t < 100; ++t)
    samples.push_back(
        sample_duplication_process(w, k, p, rng).total_leaf_weight);
  std::sort(samples.begin(), samples.end());
  double p95 = samples[94];
  // Lemma 6.5 hides its constant A; an order-of-magnitude envelope is the
  // right strength for a unit test (the experiment binary reports ratios).
  EXPECT_LT(p95, 10.0 * g * std::log2(w));
}

TEST(Duplication, PeakLevelWeightAtLeastRoot) {
  Rng rng(10);
  DuplicationParams p;
  auto out = sample_duplication_process(100.0, 8, p, rng);
  EXPECT_GE(out.peak_level_weight, 100.0);
}

TEST(Duplication, EnvelopeHoldsForBothAdversaries) {
  // Lemma 6.5's bound is adversary-independent: both the balanced and
  // the skewed strategy must stay within the O(g(W) log W) envelope.
  // (Skewing is NOT monotone here: small children die at the w̄ cutoff,
  // so the skewed adversary often produces *less* total weight.)
  Rng rng(11);
  const double w = 2048.0;
  const std::uint64_t k = 11;
  for (double frac : {0.5, 0.05}) {
    DuplicationParams p;
    p.adversary_fraction = frac;
    double g = lemma65_g(w, static_cast<double>(k), p.alpha, 0.1) *
               std::log2(w);
    for (int t = 0; t < 50; ++t) {
      auto out = sample_duplication_process(w, k, p, rng);
      EXPECT_LT(out.total_leaf_weight, 4.0 * g) << "fraction " << frac;
      EXPECT_GE(out.total_leaf_weight, w);  // the root weight survives
    }
  }
}

}  // namespace
}  // namespace sepdc::sim
