// The §1 CRCW-PRAM toolkit: integer (radix) sorting, random permuting,
// and parallel selection.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "parallel/permutation.hpp"
#include "parallel/radix_sort.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace sepdc::par {
namespace {

class IntegerToolkit : public ::testing::TestWithParam<unsigned> {
 protected:
  ThreadPool pool{GetParam()};
};

TEST_P(IntegerToolkit, RadixSortMatchesStdSort64) {
  Rng rng(1);
  for (std::size_t n : {0u, 1u, 2u, 255u, 256u, 4097u, 100000u}) {
    std::vector<std::uint64_t> v(n);
    for (auto& x : v) x = rng.next();
    auto expect = v;
    std::sort(expect.begin(), expect.end());
    radix_sort(pool, v, 64);
    EXPECT_EQ(v, expect) << "n=" << n;
  }
}

TEST_P(IntegerToolkit, RadixSortNarrowKeys) {
  Rng rng(2);
  std::vector<std::uint32_t> v(50000);
  for (auto& x : v) x = static_cast<std::uint32_t>(rng.below(1u << 16));
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  radix_sort(pool, v, 16);  // only the live bits
  EXPECT_EQ(v, expect);
}

TEST_P(IntegerToolkit, RadixSortByKeyIsStable) {
  // Sort pairs by the second component only; equal keys must preserve
  // input order (stability is what the permutation construction needs).
  struct Pair {
    std::uint32_t original;
    std::uint32_t key;
    bool operator==(const Pair&) const = default;
  };
  Rng rng(3);
  std::vector<Pair> v(20000);
  for (std::uint32_t i = 0; i < v.size(); ++i)
    v[i] = Pair{i, static_cast<std::uint32_t>(rng.below(16))};
  auto expect = v;
  std::stable_sort(expect.begin(), expect.end(),
                   [](const Pair& a, const Pair& b) { return a.key < b.key; });
  radix_sort_by(
      pool, v, [](const Pair& p) { return static_cast<std::uint64_t>(p.key); },
      8);
  EXPECT_EQ(v, expect);
}

TEST_P(IntegerToolkit, RadixSortAllEqualAndPresorted) {
  std::vector<std::uint64_t> same(10000, 42);
  auto copy = same;
  radix_sort(pool, same, 64);
  EXPECT_EQ(same, copy);

  std::vector<std::uint64_t> asc(10000);
  std::iota(asc.begin(), asc.end(), 0u);
  auto v = asc;
  radix_sort(pool, v, 64);
  EXPECT_EQ(v, asc);
}

TEST_P(IntegerToolkit, RandomPermutationIsAPermutation) {
  Rng rng(4);
  for (std::size_t n : {1u, 7u, 1000u, 65536u}) {
    auto perm = random_permutation(pool, n, rng);
    ASSERT_EQ(perm.size(), n);
    std::vector<std::uint32_t> sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    for (std::uint32_t i = 0; i < n; ++i) ASSERT_EQ(sorted[i], i);
  }
}

TEST_P(IntegerToolkit, RandomPermutationLooksUniform) {
  // Chi-squared-ish sanity: position of element 0 over many draws should
  // spread across the range.
  Rng rng(5);
  const std::size_t n = 16;
  std::vector<int> position_counts(n, 0);
  const int draws = 4000;
  for (int t = 0; t < draws; ++t) {
    auto perm = random_permutation(pool, n, rng);
    for (std::size_t pos = 0; pos < n; ++pos) {
      if (perm[pos] == 0) {
        ++position_counts[pos];
        break;
      }
    }
  }
  for (int c : position_counts) {
    EXPECT_GT(c, draws / static_cast<int>(n) / 2);
    EXPECT_LT(c, draws * 2 / static_cast<int>(n));
  }
}

TEST_P(IntegerToolkit, RandomPermutationDeterministicPerSeed) {
  Rng a(6), b(6);
  auto pa = random_permutation(pool, 1000, a);
  auto pb = random_permutation(pool, 1000, b);
  EXPECT_EQ(pa, pb);
}

TEST_P(IntegerToolkit, SelectMatchesNthElement) {
  Rng rng(7);
  for (std::size_t n : {1u, 65u, 1000u, 30000u}) {
    std::vector<std::int64_t> data(n);
    for (auto& x : data) x = rng.range(-1000, 1000);
    for (std::size_t rank : {std::size_t{0}, n / 4, n / 2, n - 1}) {
      auto sorted = data;
      std::nth_element(sorted.begin(),
                       sorted.begin() + static_cast<std::ptrdiff_t>(rank),
                       sorted.end());
      EXPECT_EQ(parallel_select(pool, data, rank, rng), sorted[rank])
          << "n=" << n << " rank=" << rank;
    }
  }
}

TEST_P(IntegerToolkit, SelectWithHeavyDuplicates) {
  Rng rng(8);
  std::vector<int> data(10000, 5);
  for (std::size_t i = 0; i < 100; ++i)
    data[rng.below(data.size())] = static_cast<int>(rng.below(10));
  auto sorted = data;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(parallel_select(pool, data, 5000, rng), sorted[5000]);
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, IntegerToolkit,
                         ::testing::Values(1u, 4u));

}  // namespace
}  // namespace sepdc::par
