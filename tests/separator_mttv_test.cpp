// End-to-end behaviour of the Unit Time Sphere Separator sampler: draws
// must split real point sets with the quality Theorem 2.1 promises, across
// dimensions and workloads.
#include "separator/mttv.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/constants.hpp"
#include "knn/brute_force.hpp"
#include "knn/neighborhood.hpp"
#include "separator/hyperplane.hpp"
#include "separator/quality.hpp"
#include "support/stats.hpp"
#include "workload/generators.hpp"

namespace sepdc::separator {
namespace {

template <int D>
double acceptance_rate(const std::vector<geo::Point<D>>& pts, double delta,
                       int draws, Rng& rng) {
  SphereSeparatorSampler<D> sampler(
      std::span<const geo::Point<D>>(pts), rng);
  int good = 0;
  for (int i = 0; i < draws; ++i) {
    auto shape = sampler.draw(rng);
    if (!shape) continue;
    auto counts =
        split_counts<D>(std::span<const geo::Point<D>>(pts), *shape);
    if (counts.max_fraction() <= delta && counts.inner > 0 &&
        counts.outer > 0)
      ++good;
  }
  return static_cast<double>(good) / draws;
}

TEST(Mttv, AcceptanceRateUniform2D) {
  Rng rng(21);
  auto pts = workload::uniform_cube<2>(4000, rng);
  double delta = geo::splitting_ratio(2) + 0.05;  // 0.80
  double rate = acceptance_rate<2>(pts, delta, 200, rng);
  // The paper models success probability >= 1/2; require a healthy margin
  // below that to keep the test robust, and report regression if it sinks.
  EXPECT_GT(rate, 0.5) << "separator acceptance collapsed";
}

TEST(Mttv, AcceptanceRateClustered2D) {
  Rng rng(22);
  auto pts = workload::gaussian_clusters<2>(4000, 8, 0.01, rng);
  double delta = geo::splitting_ratio(2) + 0.05;
  EXPECT_GT(acceptance_rate<2>(pts, delta, 200, rng), 0.35);
}

TEST(Mttv, AcceptanceRateUniform3D) {
  Rng rng(23);
  auto pts = workload::uniform_cube<3>(4000, rng);
  double delta = geo::splitting_ratio(3) + 0.05;
  EXPECT_GT(acceptance_rate<3>(pts, delta, 200, rng), 0.5);
}

TEST(Mttv, AcceptanceRateSlab3D) {
  Rng rng(24);
  auto pts = workload::adversarial_slab<3>(4000, 1e-4, rng);
  double delta = geo::splitting_ratio(3) + 0.05;
  EXPECT_GT(acceptance_rate<3>(pts, delta, 200, rng), 0.3);
}

TEST(Mttv, DegenerateAllIdentical) {
  Rng rng(25);
  std::vector<geo::Point<2>> pts(100, geo::Point<2>{{3.0, 4.0}});
  SphereSeparatorSampler<2> sampler(
      std::span<const geo::Point<2>>(pts), rng);
  EXPECT_TRUE(sampler.degenerate());
  EXPECT_FALSE(sampler.draw(rng).has_value());
}

TEST(Mttv, MedianSphereIntersectionIsSublinear) {
  // Theorem 2.1 shape check at one size: for uniform 2-D points the
  // median intersection number over draws should be near c·√n, far below
  // n.
  Rng rng(26);
  const std::size_t n = 4096;
  auto pts = workload::uniform_cube<2>(n, rng);
  auto& pool = par::ThreadPool::global();
  auto result =
      knn::brute_force_parallel<2>(pool, std::span<const geo::Point<2>>(pts), 1);
  auto balls =
      knn::neighborhood_system<2>(std::span<const geo::Point<2>>(pts), result);

  SphereSeparatorSampler<2> sampler(std::span<const geo::Point<2>>(pts), rng);
  std::vector<double> iotas;
  for (int i = 0; i < 60; ++i) {
    auto shape = sampler.draw(rng);
    if (!shape) continue;
    auto counts = split_counts<2>(std::span<const geo::Point<2>>(pts), *shape);
    if (counts.max_fraction() > 0.80) continue;  // only accepted separators
    iotas.push_back(static_cast<double>(intersection_number<2>(
        std::span<const geo::Ball<2>>(balls), *shape)));
  }
  ASSERT_GT(iotas.size(), 10u);
  double median = stats::percentile(iotas, 0.5);
  EXPECT_LT(median, 12.0 * std::sqrt(static_cast<double>(n)));
}

TEST(Mttv, SetupAndDrawCostsMatchModel) {
  Rng rng(27);
  auto pts = workload::uniform_cube<2>(1000, rng);
  SphereSeparatorSampler<2> sampler(std::span<const geo::Point<2>>(pts), rng);
  auto setup = sampler.setup_cost();
  EXPECT_GE(setup.work, 1000u);
  EXPECT_LE(setup.depth, 2u);
  EXPECT_EQ(SphereSeparatorSampler<2>::draw_cost().depth, 1u);
}

TEST(Mttv, DenormalizePreservesClassification) {
  Rng rng(28);
  // A sphere in normalized coordinates maps to original coordinates with
  // consistent classification.
  geo::Sphere<2> s{{{0.5, 0.0}}, 1.0};
  auto shape = geo::SeparatorShape<2>::make_sphere(s);
  geo::Point<2> shift{{10.0, -3.0}};
  double scale = 0.25;  // x_norm = (x - shift) * scale
  auto mapped = denormalize(shape, shift, scale);
  for (int trial = 0; trial < 200; ++trial) {
    geo::Point<2> xn{{rng.uniform(-4, 4), rng.uniform(-4, 4)}};
    geo::Point<2> x = xn / scale + shift;
    EXPECT_EQ(shape.classify(xn), mapped.classify(x));
  }
}

TEST(Hyperplane, MedianSplitsEvenly) {
  Rng rng(29);
  auto pts = workload::uniform_cube<3>(1001, rng);
  auto shape = hyperplane_median<3>(std::span<const geo::Point<3>>(pts));
  ASSERT_TRUE(shape.has_value());
  auto counts = split_counts<3>(std::span<const geo::Point<3>>(pts), *shape);
  EXPECT_GT(counts.inner, 0u);
  EXPECT_GT(counts.outer, 0u);
  EXPECT_LE(counts.max_fraction(), 0.55);
}

TEST(Hyperplane, HeavyTiesStillSplit) {
  std::vector<geo::Point<2>> pts;
  for (int i = 0; i < 50; ++i) pts.push_back({{1.0, 0.0}});
  pts.push_back({{0.0, 0.0}});
  auto shape = hyperplane_median<2>(std::span<const geo::Point<2>>(pts));
  ASSERT_TRUE(shape.has_value());
  auto counts = split_counts<2>(std::span<const geo::Point<2>>(pts), *shape);
  EXPECT_GT(counts.inner, 0u);
  EXPECT_GT(counts.outer, 0u);
}

TEST(Hyperplane, AllIdenticalReturnsNullopt) {
  std::vector<geo::Point<2>> pts(20, geo::Point<2>{{1.0, 1.0}});
  EXPECT_FALSE(
      hyperplane_median<2>(std::span<const geo::Point<2>>(pts)).has_value());
}

}  // namespace
}  // namespace sepdc::separator
