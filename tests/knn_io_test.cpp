#include "knn/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "knn/brute_force.hpp"
#include "workload/generators.hpp"

namespace sepdc::knn {
namespace {

KnnResult sample_result(std::size_t n, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  auto pts = workload::uniform_cube<2>(n, rng);
  return brute_force<2>(std::span<const geo::Point<2>>(pts), k);
}

TEST(KnnIo, RoundtripPreservesEverything) {
  auto r = sample_result(200, 4, 1);
  std::stringstream buffer;
  ASSERT_TRUE(save_result(buffer, r));
  KnnResult loaded;
  ASSERT_TRUE(load_result(buffer, loaded));
  EXPECT_EQ(loaded.n, r.n);
  EXPECT_EQ(loaded.k, r.k);
  EXPECT_EQ(loaded.neighbors, r.neighbors);
  EXPECT_EQ(loaded.dist2, r.dist2);
}

TEST(KnnIo, RoundtripWithPaddedRows) {
  auto r = sample_result(3, 8, 2);  // n-1 < k: rows padded
  std::stringstream buffer;
  ASSERT_TRUE(save_result(buffer, r));
  KnnResult loaded;
  ASSERT_TRUE(load_result(buffer, loaded));
  EXPECT_EQ(loaded.neighbors, r.neighbors);
  EXPECT_EQ(loaded.count(0), 2u);
}

TEST(KnnIo, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "not a sepdc file at all";
  KnnResult out;
  EXPECT_FALSE(load_result(buffer, out));
}

TEST(KnnIo, RejectsTruncatedPayload) {
  auto r = sample_result(100, 3, 3);
  std::stringstream buffer;
  ASSERT_TRUE(save_result(buffer, r));
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream half(bytes);
  KnnResult out;
  EXPECT_FALSE(load_result(half, out));
}

TEST(KnnIo, RejectsCorruptedNeighborIds) {
  auto r = sample_result(50, 2, 4);
  r.row_neighbors(10)[0] = 9999;  // out of range
  std::stringstream buffer;
  ASSERT_TRUE(save_result(buffer, r));
  KnnResult out;
  EXPECT_FALSE(load_result(buffer, out));
}

TEST(KnnIo, RejectsUnsortedRow) {
  auto r = sample_result(50, 3, 5);
  std::swap(r.row_dist2(7)[0], r.row_dist2(7)[2]);
  std::stringstream buffer;
  ASSERT_TRUE(save_result(buffer, r));
  KnnResult out;
  EXPECT_FALSE(load_result(buffer, out));
}

TEST(KnnIo, RejectsAbsurdHeader) {
  std::stringstream buffer;
  buffer.write(detail::kMagic, sizeof(detail::kMagic));
  std::uint64_t n = 1ull << 50, k = 3;
  buffer.write(reinterpret_cast<const char*>(&n), 8);
  buffer.write(reinterpret_cast<const char*>(&k), 8);
  KnnResult out;
  EXPECT_FALSE(load_result(buffer, out));
}

TEST(KnnIo, RandomByteMutationsNeverCrashOrCorrupt) {
  // Single-byte corruption fuzz: the loader must either reject the file
  // or produce a result that still satisfies the row invariants it
  // validates — never crash, never hand back out-of-range ids.
  auto r = sample_result(80, 3, 7);
  std::stringstream buffer;
  ASSERT_TRUE(save_result(buffer, r));
  const std::string original = buffer.str();
  Rng rng(99);
  int accepted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes = original;
    std::size_t pos = rng.below(bytes.size());
    bytes[pos] = static_cast<char>(rng.below(256));
    std::stringstream mutated(bytes);
    KnnResult out;
    if (load_result(mutated, out)) {
      ++accepted;
      // Accepted loads carry validated rows.
      for (std::size_t i = 0; i < out.n; ++i) {
        for (std::uint32_t nbr : out.row_neighbors(i)) {
          if (nbr == KnnResult::kInvalid) continue;
          ASSERT_LT(nbr, out.n);
          ASSERT_NE(nbr, i);
        }
      }
    }
  }
  // Many mutations hit the dist2 payload (not validated beyond ordering),
  // so some acceptances are expected; the point is zero crashes and zero
  // invariant violations.
  SUCCEED() << accepted << " mutated files accepted with valid invariants";
}

TEST(KnnIo, EdgeListExport) {
  auto r = sample_result(30, 2, 6);
  auto g = KnnGraph::from_result(par::ThreadPool::global(), r);
  std::stringstream os;
  export_edge_list(os, g);
  // Count lines == edge count; each line "u v" with u < v.
  std::size_t lines = 0;
  std::uint32_t u, v;
  while (os >> u >> v) {
    ++lines;
    EXPECT_LT(u, v);
    EXPECT_TRUE(g.has_edge(u, v));
  }
  EXPECT_EQ(lines, g.edge_count());
}

}  // namespace
}  // namespace sepdc::knn
