// The standalone SeparatorIndex: exact fixed-radius and k-NN queries
// through the partition-tree reachability march.
#include "core/separator_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "knn/kdtree.hpp"
#include "workload/generators.hpp"

namespace sepdc::core {
namespace {

template <int D>
std::vector<std::uint32_t> brute_in_ball(
    std::span<const geo::Point<D>> pts, const geo::Point<D>& c, double r) {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < pts.size(); ++i)
    if (geo::distance2(pts[i], c) <= r * r)
      out.push_back(static_cast<std::uint32_t>(i));
  return out;
}

struct IndexCase {
  workload::Kind kind;
  std::size_t n;
};

class SeparatorIndexRadius : public ::testing::TestWithParam<IndexCase> {};

TEST_P(SeparatorIndexRadius, FixedRadiusMatchesBruteForce) {
  auto [kind, n] = GetParam();
  Rng rng(500 + static_cast<std::uint64_t>(kind));
  auto pts = workload::generate<2>(kind, n, rng);
  std::span<const geo::Point<2>> span(pts);
  SeparatorIndexConfig cfg;
  cfg.seed = rng.next();
  SeparatorIndex<2> index(span, cfg, par::ThreadPool::global());

  for (int q = 0; q < 100; ++q) {
    geo::Point<2> c{{rng.uniform(-0.2, 1.2), rng.uniform(-0.2, 1.2)}};
    double r = rng.uniform(0.0, 0.3);
    std::vector<std::uint32_t> got;
    index.for_each_in_ball(c, r, [&](std::uint32_t id, double d2) {
      EXPECT_DOUBLE_EQ(d2, geo::distance2(pts[id], c));
      got.push_back(id);
    });
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, brute_in_ball<2>(span, c, r)) << "query " << q;
    EXPECT_EQ(index.count_in_ball(c, r), got.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SeparatorIndexRadius,
    ::testing::Values(IndexCase{workload::Kind::UniformCube, 2000},
                      IndexCase{workload::Kind::GaussianClusters, 2000},
                      IndexCase{workload::Kind::AdversarialSlab, 1500},
                      IndexCase{workload::Kind::Duplicates, 1500},
                      IndexCase{workload::Kind::NearCollinear, 1000}));

TEST(SeparatorIndex, KnnMatchesKdTreeExactly) {
  Rng rng(42);
  auto pts = workload::uniform_cube<2>(3000, rng);
  std::span<const geo::Point<2>> span(pts);
  SeparatorIndexConfig cfg;
  SeparatorIndex<2> index(span, cfg, par::ThreadPool::global());
  knn::KdTree<2> tree(span);

  for (int q = 0; q < 200; ++q) {
    geo::Point<2> p{{rng.uniform(), rng.uniform()}};
    std::size_t k = 1 + rng.below(8);
    auto got = index.knn(p, k).take_sorted();
    auto expect = tree.query(p, k).take_sorted();
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t s = 0; s < got.size(); ++s) {
      EXPECT_EQ(got[s].index, expect[s].index) << "query " << q;
      EXPECT_DOUBLE_EQ(got[s].dist2, expect[s].dist2);
    }
  }
}

TEST(SeparatorIndex, SelfExclusionKnn) {
  Rng rng(43);
  auto pts = workload::uniform_cube<2>(800, rng);
  std::span<const geo::Point<2>> span(pts);
  SeparatorIndexConfig cfg;
  SeparatorIndex<2> index(span, cfg, par::ThreadPool::global());
  knn::KdTree<2> tree(span);
  for (std::uint32_t i = 0; i < 50; ++i) {
    auto got = index.knn(pts[i], 3, i).take_sorted();
    auto expect = tree.query(pts[i], 3, i).take_sorted();
    ASSERT_EQ(got.size(), 3u);
    for (std::size_t s = 0; s < 3; ++s)
      EXPECT_EQ(got[s].index, expect[s].index);
  }
}

TEST(SeparatorIndex, KGreaterThanPopulation) {
  std::vector<geo::Point<2>> pts{{{0.0, 0.0}}, {{1.0, 0.0}}, {{2.0, 0.0}}};
  SeparatorIndexConfig cfg;
  SeparatorIndex<2> index(std::span<const geo::Point<2>>(pts), cfg,
                          par::ThreadPool::global());
  auto got = index.knn(geo::Point<2>{{0.1, 0.0}}, 10).take_sorted();
  EXPECT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].index, 0u);
}

TEST(SeparatorIndex, QueryFarOutsideTheData) {
  Rng rng(44);
  auto pts = workload::uniform_cube<2>(500, rng);
  SeparatorIndexConfig cfg;
  SeparatorIndex<2> index(std::span<const geo::Point<2>>(pts), cfg,
                          par::ThreadPool::global());
  geo::Point<2> far{{1000.0, -1000.0}};
  auto got = index.knn(far, 2).take_sorted();
  ASSERT_EQ(got.size(), 2u);
  // Verify against linear scan.
  knn::TopK ref(2);
  for (std::size_t j = 0; j < pts.size(); ++j)
    ref.offer(geo::distance2(pts[j], far), static_cast<std::uint32_t>(j));
  auto expect = ref.take_sorted();
  EXPECT_EQ(got[0].index, expect[0].index);
  EXPECT_EQ(got[1].index, expect[1].index);
}

TEST(SeparatorIndex, ZeroRadiusAndNegativeRadius) {
  std::vector<geo::Point<2>> pts{{{0.5, 0.5}}, {{0.5, 0.5}}, {{1.0, 1.0}}};
  SeparatorIndexConfig cfg;
  SeparatorIndex<2> index(std::span<const geo::Point<2>>(pts), cfg,
                          par::ThreadPool::global());
  // Closed ball of radius 0 at a duplicated site finds both copies.
  EXPECT_EQ(index.count_in_ball(geo::Point<2>{{0.5, 0.5}}, 0.0), 2u);
  EXPECT_EQ(index.count_in_ball(geo::Point<2>{{0.5, 0.5}}, -1.0), 0u);
}

TEST(SeparatorIndex, AllIdenticalPoints) {
  std::vector<geo::Point<2>> pts(300, geo::Point<2>{{7.0, 7.0}});
  SeparatorIndexConfig cfg;
  SeparatorIndex<2> index(std::span<const geo::Point<2>>(pts), cfg,
                          par::ThreadPool::global());
  EXPECT_EQ(index.count_in_ball(geo::Point<2>{{7.0, 7.0}}, 0.1), 300u);
  auto got = index.knn(geo::Point<2>{{7.0, 7.0}}, 5).take_sorted();
  EXPECT_EQ(got.size(), 5u);
}

TEST(SeparatorIndex, ThreeDimensions) {
  Rng rng(45);
  auto pts = workload::uniform_cube<3>(1500, rng);
  std::span<const geo::Point<3>> span(pts);
  SeparatorIndexConfig cfg;
  SeparatorIndex<3> index(span, cfg, par::ThreadPool::global());
  knn::KdTree<3> tree(span);
  for (int q = 0; q < 50; ++q) {
    geo::Point<3> p{{rng.uniform(), rng.uniform(), rng.uniform()}};
    auto got = index.knn(p, 4).take_sorted();
    auto expect = tree.query(p, 4).take_sorted();
    for (std::size_t s = 0; s < 4; ++s)
      EXPECT_EQ(got[s].index, expect[s].index);
  }
}

TEST(SeparatorIndex, HeightIsLogarithmic) {
  Rng rng(46);
  auto pts = workload::uniform_cube<2>(32768, rng);
  SeparatorIndexConfig cfg;
  SeparatorIndex<2> index(std::span<const geo::Point<2>>(pts), cfg,
                          par::ThreadPool::global());
  EXPECT_LE(index.height(), 5 * 15u);  // c * log2(n)
  EXPECT_GE(index.leaf_count(), 32768u / cfg.leaf_size / 4);
}

TEST(SeparatorIndex, BatchRadiusMatchesBruteForce) {
  Rng rng(48);
  auto pts = workload::gaussian_clusters<2>(2500, 4, 0.03, rng);
  std::span<const geo::Point<2>> span(pts);
  SeparatorIndexConfig cfg;
  auto& pool = par::ThreadPool::global();
  SeparatorIndex<2> index(span, cfg, pool);

  std::vector<geo::Point<2>> queries;
  for (int q = 0; q < 300; ++q)
    queries.push_back({{rng.uniform(-0.2, 1.2), rng.uniform(-0.2, 1.2)}});
  double radius = 0.15;
  auto rows = index.batch_radius(
      pool, std::span<const geo::Point<2>>(queries), radius);
  ASSERT_EQ(rows.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    std::vector<std::uint32_t> got;
    for (const auto& [id, d2] : rows[q]) {
      EXPECT_DOUBLE_EQ(d2, geo::distance2(pts[id], queries[q]));
      got.push_back(id);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, brute_in_ball<2>(span, queries[q], radius))
        << "query " << q;
  }
}

TEST(SeparatorIndex, BatchRadiusDeterministicAcrossPoolSizes) {
  Rng rng(49);
  auto pts = workload::uniform_cube<2>(2000, rng);
  std::span<const geo::Point<2>> span(pts);
  SeparatorIndexConfig cfg;
  par::ThreadPool solo(1);
  par::ThreadPool quad(4);
  SeparatorIndex<2> index(span, cfg, solo);

  std::vector<geo::Point<2>> queries;
  for (int q = 0; q < 500; ++q)
    queries.push_back({{rng.uniform(), rng.uniform()}});
  std::span<const geo::Point<2>> qspan(queries);
  auto a = index.batch_radius(solo, qspan, 0.1);
  auto b = index.batch_radius(quad, qspan, 0.1);
  // Bit-identical rows, including the within-row order.
  EXPECT_EQ(a, b);
}

TEST(SeparatorIndex, BatchRadiusEdgeCases) {
  std::vector<geo::Point<2>> pts{{{0.0, 0.0}}, {{1.0, 0.0}}};
  SeparatorIndexConfig cfg;
  auto& pool = par::ThreadPool::global();
  SeparatorIndex<2> index(std::span<const geo::Point<2>>(pts), cfg, pool);
  // Empty query batch.
  EXPECT_TRUE(
      index.batch_radius(pool, std::span<const geo::Point<2>>(), 1.0)
          .empty());
  // Negative radius: rows exist but are empty.
  std::vector<geo::Point<2>> queries{{{0.0, 0.0}}};
  auto rows = index.batch_radius(
      pool, std::span<const geo::Point<2>>(queries), -1.0);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].empty());
}

TEST(SeparatorIndex, BatchKnnMatchesSingleQueries) {
  Rng rng(50);
  auto pts = workload::uniform_cube<2>(1500, rng);
  std::span<const geo::Point<2>> span(pts);
  SeparatorIndexConfig cfg;
  auto& pool = par::ThreadPool::global();
  SeparatorIndex<2> index(span, cfg, pool);
  knn::KdTree<2> tree(span);

  std::vector<geo::Point<2>> queries;
  for (int q = 0; q < 200; ++q)
    queries.push_back({{rng.uniform(), rng.uniform()}});
  std::size_t k = 5;
  auto rows =
      index.batch_knn(pool, std::span<const geo::Point<2>>(queries), k);
  ASSERT_EQ(rows.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    auto expect = tree.query(queries[q], k).take_sorted();
    ASSERT_EQ(rows[q].size(), expect.size());
    for (std::size_t s = 0; s < expect.size(); ++s) {
      EXPECT_EQ(rows[q][s].index, expect[s].index) << "query " << q;
      EXPECT_DOUBLE_EQ(rows[q][s].dist2, expect[s].dist2);
    }
  }
}

TEST(SeparatorIndex, HyperplanePartitionVariant) {
  Rng rng(47);
  auto pts = workload::uniform_cube<2>(2000, rng);
  std::span<const geo::Point<2>> span(pts);
  SeparatorIndexConfig cfg;
  cfg.partition = PartitionRule::HyperplaneMedian;
  SeparatorIndex<2> index(span, cfg, par::ThreadPool::global());
  for (int q = 0; q < 50; ++q) {
    geo::Point<2> c{{rng.uniform(), rng.uniform()}};
    double r = rng.uniform(0.0, 0.2);
    EXPECT_EQ(index.count_in_ball(c, r), brute_in_ball<2>(span, c, r).size());
  }
}

}  // namespace
}  // namespace sepdc::core
