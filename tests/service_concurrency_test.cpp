// Concurrency stress: N writer threads continuously rebuilding snapshots
// while M reader threads query through the broker. Because every
// generation is built over the SAME point set (different separator
// seeds), every exact answer is invariant across generations — so any
// torn read, use-after-free, or half-published snapshot shows up as a
// wrong answer against the fixed oracle (and as a race under TSan).
// Readers also assert that the snapshot version they observe never goes
// backwards.
#include "service/query_broker.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>

#include "knn/kdtree.hpp"
#include "workload/generators.hpp"

namespace sepdc::service {
namespace {

using Pt = geo::Point<2>;
using std::chrono::microseconds;

struct Oracle {
  std::vector<Pt> points;
  std::vector<Pt> queries;
  std::size_t k;
  double radius;
  std::vector<std::vector<knn::TopK::Entry>> knn_rows;
  std::vector<std::vector<std::pair<std::uint32_t, double>>> radius_rows;

  Oracle(std::size_t n, std::size_t nq, std::size_t k_in, double r,
         Rng& rng)
      : k(k_in), radius(r) {
    points = workload::uniform_cube<2>(n, rng);
    for (std::size_t q = 0; q < nq; ++q)
      queries.push_back({{rng.uniform(), rng.uniform()}});
    knn::KdTree<2> tree{std::span<const Pt>(points)};
    knn_rows.resize(nq);
    radius_rows.resize(nq);
    for (std::size_t q = 0; q < nq; ++q) {
      knn_rows[q] = tree.query(queries[q], k).take_sorted();
      for (std::size_t j = 0; j < points.size(); ++j) {
        double d2 = geo::distance2(points[j], queries[q]);
        if (d2 <= r * r)
          radius_rows[q].emplace_back(static_cast<std::uint32_t>(j), d2);
      }
      std::sort(radius_rows[q].begin(), radius_rows[q].end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second < b.second;
                  return a.first < b.first;
                });
    }
  }
};

TEST(ServiceConcurrency, ReadersSeeExactAnswersUnderContinuousRebuild) {
  Rng rng(2100);
  Oracle oracle(1200, 160, 3, 0.12, rng);
  std::span<const Pt> span(oracle.points);

  BrokerConfig cfg;
  cfg.max_batch = 8;
  cfg.flush_interval = microseconds(50);
  cfg.index.seed = rng.next();
  auto& pool = par::ThreadPool::global();
  QueryBroker<2> broker(span, cfg, pool);

  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  constexpr int kRebuildsPerWriter = 5;
  constexpr int kItersPerReader = 120;

  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> max_seen_version{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int r = 0; r < kRebuildsPerWriter; ++r) {
        // Alternate blocking rebuilds with pool-submitted async ones so
        // both publication paths race against readers.
        if ((w + r) % 2 == 0) {
          broker.rebuild(span);
        } else {
          broker.rebuild_async(oracle.points);  // copies the point set
        }
      }
    });
  }

  std::vector<std::thread> readers;
  for (int m = 0; m < kReaders; ++m) {
    readers.emplace_back([&, m] {
      Rng lrng(3000 + static_cast<std::uint64_t>(m));
      std::uint64_t last_version = 0;
      for (int it = 0; it < kItersPerReader; ++it) {
        std::size_t q = lrng.below(oracle.queries.size());
        switch (it % 4) {
          case 0: {  // single k-NN through the batch path
            auto row = broker.knn(oracle.queries[q], oracle.k);
            if (row != oracle.knn_rows[q]) failures.fetch_add(1);
            break;
          }
          case 1: {  // tight deadline: exercises the punt path
            auto row = broker.knn(oracle.queries[q], oracle.k,
                                  microseconds(1));
            if (row != oracle.knn_rows[q]) failures.fetch_add(1);
            break;
          }
          case 2: {  // bulk chunk
            std::size_t lo = lrng.below(oracle.queries.size() - 8);
            auto rows = broker.bulk_knn(
                std::span<const Pt>(oracle.queries).subspan(lo, 8),
                oracle.k);
            for (std::size_t i = 0; i < rows.size(); ++i)
              if (rows[i] != oracle.knn_rows[lo + i]) failures.fetch_add(1);
            break;
          }
          case 3: {  // radius
            auto row = broker.radius(oracle.queries[q], oracle.radius);
            if (row != oracle.radius_rows[q]) failures.fetch_add(1);
            break;
          }
        }
        // Snapshot versions must be monotone from any one reader's view.
        std::uint64_t v = broker.version();
        if (v < last_version) failures.fetch_add(1000);
        last_version = v;
        std::uint64_t seen = max_seen_version.load();
        while (seen < v &&
               !max_seen_version.compare_exchange_weak(seen, v)) {
        }
      }
    });
  }

  for (auto& t : writers) t.join();
  for (auto& t : readers) t.join();
  broker.drain_rebuilds();

  EXPECT_EQ(failures.load(), 0);

  // Every rebuild claimed a distinct version; the final published version
  // is the largest claimed one (10 rebuilds + the constructor's build).
  const std::uint64_t total_builds = 1 + kWriters * kRebuildsPerWriter;
  EXPECT_EQ(broker.version(), total_builds);
  EXPECT_GE(max_seen_version.load(), 1u);

  auto s = broker.stats();
  EXPECT_EQ(s.rebuilds, total_builds);
  EXPECT_EQ(s.snapshots_published + s.snapshots_discarded, total_builds);
  EXPECT_EQ(s.batched + s.punted, s.submitted);
  EXPECT_GT(s.punted, 0u);  // the 1us-deadline readers punted
  // Histogram reconciliation at quiescence: after every reader and
  // writer has joined, the histograms recorded under full contention
  // must agree exactly with the outcome counters (relaxed atomics drop
  // nothing).
  EXPECT_EQ(s.queue_wait.count(), s.batched);
  EXPECT_EQ(s.punt_latency.count(), s.punted);
  EXPECT_EQ(s.batch_execute.count(), s.flushes);
  EXPECT_EQ(s.flush_size.count(), s.flushes);
  EXPECT_EQ(s.flush_size.sum(), s.batched);
}

// Torn-read hunt on the snapshot store itself: hammer publish/current
// from many threads; every snapshot a reader obtains must be internally
// consistent (version matches the generation's recorded point count).
TEST(ServiceConcurrency, SnapshotStorePublishIsAtomicAndMonotone) {
  Rng rng(2200);
  auto& pool = par::ThreadPool::global();
  core::SeparatorIndexConfig icfg;
  icfg.seed = rng.next();

  // Generations of distinct sizes: size identifies the generation, so a
  // mixed-up snapshot is detectable.
  std::vector<std::vector<Pt>> generations;
  for (std::size_t g = 0; g < 6; ++g)
    generations.push_back(workload::uniform_cube<2>(200 + 50 * g, rng));

  SnapshotStore<2> store;
  store.rebuild(std::span<const Pt>(generations[0]), icfg, pool);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int m = 0; m < 3; ++m) {
    readers.emplace_back([&] {
      std::uint64_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto snap = store.current();
        if (!snap || !snap->index || !snap->fallback ||
            snap->index->size() != snap->point_count ||
            snap->fallback->size() != snap->point_count) {
          failures.fetch_add(1);
        }
        if (snap->version < last) failures.fetch_add(1000);
        last = snap->version;
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      Rng wrng(40 + static_cast<std::uint64_t>(w));
      for (int r = 0; r < 8; ++r) {
        const auto& pts = generations[wrng.below(generations.size())];
        core::SeparatorIndexConfig c = icfg;
        c.seed = wrng.next();
        store.rebuild(std::span<const Pt>(pts), c, pool);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(store.version(), 1u + 2u * 8u);
}

}  // namespace
}  // namespace sepdc::service
