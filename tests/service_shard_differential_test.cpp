// Shard differential suite: a ShardRouter over S separator-cut shards
// must be indistinguishable from one broker over the whole point set —
// same ids, same distances, same (dist2, id) tie order — for every
// interleaving of k-NN, radius, insert, remove, and bulk updates,
// across S ∈ {1, 2, 4, 7}. The shard function, the home-first fan-out,
// and the k-way merge may only change latency, never answers. Also
// pins the paper's scaling story (the boundary fan-out fraction decays
// as n grows at fixed S and k — queries whose ball crosses a separator
// are a vanishing minority) and the sharded save/bootstrap protocol,
// including torn-save rejection.
#include "service/shard_router.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "workload/generators.hpp"

namespace sepdc::service {
namespace {

using Pt = geo::Point<2>;
using KnnRow = std::vector<knn::TopK::Entry>;
using RadiusRow = std::vector<std::pair<std::uint32_t, double>>;
using std::chrono::microseconds;

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

// Brute force over the current live set — the oracle every router
// answer is checked against, including tie order.
struct LiveOracle {
  std::map<std::uint32_t, Pt> live;

  KnnRow knn(const Pt& q, std::size_t k,
             std::uint32_t exclude = 0xffffffffu) const {
    KnnRow all;
    all.reserve(live.size());
    for (const auto& [id, p] : live) {
      if (id == exclude) continue;
      all.push_back({geo::distance2(p, q), id});
    }
    std::sort(all.begin(), all.end());
    if (all.size() > k) all.resize(k);
    return all;
  }

  RadiusRow radius(const Pt& q, double r) const {
    RadiusRow out;
    const double r2 = r * r;
    for (const auto& [id, p] : live) {
      const double d2 = geo::distance2(p, q);
      if (d2 <= r2) out.emplace_back(id, d2);  // closed ball
    }
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second < b.second;
      return a.first < b.first;
    });
    return out;
  }

  std::uint32_t any_id(Rng& rng) const {
    auto it = live.begin();
    std::advance(it, static_cast<long>(rng.below(live.size())));
    return it->first;
  }
};

void expect_knn_equal(const KnnRow& got, const KnnRow& want,
                      const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t s = 0; s < got.size(); ++s) {
    EXPECT_EQ(got[s].index, want[s].index) << what << " slot " << s;
    EXPECT_DOUBLE_EQ(got[s].dist2, want[s].dist2) << what << " slot " << s;
  }
}

void expect_radius_equal(const RadiusRow& got, const RadiusRow& want,
                         const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t s = 0; s < got.size(); ++s) {
    EXPECT_EQ(got[s].first, want[s].first) << what << " slot " << s;
    EXPECT_DOUBLE_EQ(got[s].second, want[s].second)
        << what << " slot " << s;
  }
}

ShardRouterConfig router_config(std::uint32_t shards, std::uint64_t seed) {
  ShardRouterConfig cfg;
  cfg.shards = shards;
  cfg.broker.max_batch = 8;
  cfg.broker.flush_interval = microseconds(200);
  cfg.broker.delta_compaction_threshold = 32;
  cfg.broker.index.seed = seed;
  return cfg;
}

// One seeded schedule of interleaved updates and queries against a
// router with `shards` shards, a single broker, and the brute-force
// oracle — all three must agree exactly.
void run_shard_schedule(std::uint32_t shards, workload::Kind kind,
                        std::size_t base_n, std::size_t ops,
                        std::uint64_t seed) {
  SCOPED_TRACE("shards " + std::to_string(shards) + " " +
               workload::kind_name(kind) + " seed " + std::to_string(seed));
  Rng rng(seed);
  auto points = workload::generate<2>(kind, base_n, rng);
  auto& pool = par::ThreadPool::global();

  const ShardRouterConfig rcfg = router_config(shards, rng.next());
  ShardRouter<2> router(std::span<const Pt>(points), rcfg, pool);
  QueryBroker<2> single(std::span<const Pt>(points), rcfg.broker, pool);
  if (shards >= 2 && base_n >= 200) {
    EXPECT_GE(router.shard_count(), 2u)
        << "cut did not split a " << base_n << "-point set";
  }
  EXPECT_EQ(router.live_count(), points.size());

  LiveOracle oracle;
  for (std::size_t i = 0; i < points.size(); ++i)
    oracle.live.emplace(static_cast<std::uint32_t>(i), points[i]);

  std::uint32_t next_id = static_cast<std::uint32_t>(base_n) + 1000;
  std::size_t n_knn = 0, n_radius = 0, n_updates = 0;

  for (std::size_t op = 0; op < ops; ++op) {
    const std::size_t dice = rng.below(100);
    if (dice < 14) {
      // Insert — every fourth duplicates live coordinates so
      // zero-distance ties span shards, base, and delta.
      Pt p;
      if (!oracle.live.empty() && op % 4 == 0) {
        p = oracle.live.find(oracle.any_id(rng))->second;
      } else {
        p = Pt{{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)}};
      }
      const std::uint32_t id = next_id++;
      router.insert(id, p);
      single.insert(id, p);
      oracle.live.emplace(id, p);
      ++n_updates;
    } else if (dice < 20) {
      const std::size_t batch = 2 + rng.below(6);
      std::vector<std::uint32_t> ids;
      std::vector<Pt> pts;
      for (std::size_t b = 0; b < batch; ++b) {
        ids.push_back(next_id++);
        pts.push_back(Pt{{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)}});
      }
      router.insert_bulk(ids, pts);
      single.insert_bulk(ids, pts);
      for (std::size_t b = 0; b < batch; ++b)
        oracle.live.emplace(ids[b], pts[b]);
      n_updates += batch;
    } else if (dice < 30) {
      if (oracle.live.empty()) continue;
      const std::uint32_t id = oracle.any_id(rng);
      router.remove(id);
      single.remove(id);
      oracle.live.erase(id);
      ++n_updates;
    } else if (dice < 36) {
      if (oracle.live.size() < 4) continue;
      std::vector<std::uint32_t> ids;
      while (ids.size() < 3) {
        const std::uint32_t id = oracle.any_id(rng);
        if (std::find(ids.begin(), ids.end(), id) == ids.end())
          ids.push_back(id);
      }
      router.remove_bulk(ids);
      single.remove_bulk(ids);
      for (std::uint32_t id : ids) oracle.live.erase(id);
      n_updates += ids.size();
    } else if (dice < 66) {
      const Pt q{{rng.uniform(-0.1, 1.1), rng.uniform(-0.1, 1.1)}};
      const std::size_t k = 1 + rng.below(6);
      std::uint32_t exclude = ShardRouter<2>::kNoExclude;
      if (!oracle.live.empty() && dice % 3 == 0)
        exclude = oracle.any_id(rng);
      auto got = router.knn(q, k, microseconds(0), exclude);
      auto want = oracle.knn(q, k, exclude);
      expect_knn_equal(got, want, "knn op " + std::to_string(op));
      expect_knn_equal(single.knn(q, k, microseconds(0), exclude), want,
                       "single knn op " + std::to_string(op));
      ++n_knn;
    } else {
      const Pt q{{rng.uniform(-0.1, 1.1), rng.uniform(-0.1, 1.1)}};
      const double r = rng.below(8) == 0 ? 0.0 : rng.uniform(0.02, 0.25);
      auto got = router.radius(q, r);
      auto want = oracle.radius(q, r);
      expect_radius_equal(got, want, "radius op " + std::to_string(op));
      expect_radius_equal(single.radius(q, r), want,
                          "single radius op " + std::to_string(op));
      ++n_radius;
    }
  }

  // Quiescence: join background compactions on every shard, then bulk
  // sweeps — the fan-out-heavy path — over the settled live set.
  router.drain_rebuilds();
  single.drain_rebuilds();
  EXPECT_EQ(router.live_count(), oracle.live.size());
  std::vector<Pt> sweep;
  for (int i = 0; i < 48; ++i)
    sweep.push_back({{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)}});
  auto rows = router.bulk_knn(std::span<const Pt>(sweep), 5);
  auto single_rows = single.bulk_knn(std::span<const Pt>(sweep), 5);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    auto want = oracle.knn(sweep[i], 5);
    expect_knn_equal(rows[i], want, "sweep row " + std::to_string(i));
    expect_knn_equal(single_rows[i], want,
                     "single sweep row " + std::to_string(i));
  }
  n_knn += sweep.size();
  auto rrows = router.bulk_radius(std::span<const Pt>(sweep), 0.15);
  for (std::size_t i = 0; i < sweep.size(); ++i)
    expect_radius_equal(rrows[i], oracle.radius(sweep[i], 0.15),
                        "radius sweep row " + std::to_string(i));
  n_radius += sweep.size();

  // Router-level accounting at quiescence: everything accepted was
  // answered (nothing shed), fan-out only ever adds visits, and the
  // roll-up agrees with the per-shard truth.
  auto s = router.stats();
  EXPECT_EQ(s.submitted, n_knn + n_radius);
  EXPECT_EQ(s.knn_submitted, n_knn);
  EXPECT_EQ(s.radius_submitted, n_radius);
  EXPECT_EQ(s.knn_answered, n_knn);
  EXPECT_EQ(s.radius_answered, n_radius);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_EQ(s.updates_submitted, n_updates);
  EXPECT_LE(s.fanout_queries, s.submitted);
  EXPECT_GE(s.shard_visits, s.submitted);
  EXPECT_LE(s.boundary_fanout, 1.0);
  auto agg = router.aggregated_stats();
  EXPECT_EQ(agg.updates_submitted, n_updates);
  EXPECT_GE(agg.submitted, s.submitted) << "per-shard submissions must "
                                           "cover every router query";
  EXPECT_EQ(agg.fanout_queries, s.fanout_queries);
  std::size_t per_shard_updates = 0;
  for (std::uint32_t sh = 0; sh < router.shard_count(); ++sh)
    per_shard_updates += router.shard_stats(sh).updates_submitted;
  EXPECT_EQ(per_shard_updates, n_updates);
  if (router.shard_count() == 1) {
    EXPECT_EQ(s.fanout_queries, 0u);
  }
}

class ServiceShardDifferential
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ServiceShardDifferential, SchedulesMatchSingleBrokerAndBruteForce) {
  const std::uint32_t shards = GetParam();
  std::uint64_t seed = 6100 + shards;
  run_shard_schedule(shards, workload::Kind::UniformCube, 260, 240, seed);
  run_shard_schedule(shards, workload::Kind::GaussianClusters, 260, 240,
                     seed + 40);
  // Duplicates: coordinate ties everywhere, including across separator
  // surfaces — the tie-order acid test for the k-way merge.
  run_shard_schedule(shards, workload::Kind::Duplicates, 220, 200,
                     seed + 80);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ServiceShardDifferential,
                         ::testing::Values(1u, 2u, 4u, 7u),
                         [](const auto& pinfo) {
                           return "S" + std::to_string(pinfo.param);
                         });

// Larger instances across every shard count — the stress-labeled half
// of the suite (tests/CMakeLists.txt registers this binary twice with a
// --gtest_filter split).
TEST(ServiceShardDifferentialStress, LargeSchedules) {
  std::uint64_t seed = 6900;
  for (std::uint32_t shards : {2u, 4u, 7u}) {
    run_shard_schedule(shards, workload::Kind::UniformCube, 1400, 900,
                       seed++);
    run_shard_schedule(shards, workload::Kind::Duplicates, 1000, 700,
                       seed++);
  }
}

// The scaling story: at fixed S and k, the fraction of queries whose
// neighborhood ball crosses a separator — boundary_fanout — must decay
// as n grows (the k-th neighbor distance shrinks like n^(-1/d) while
// the cut stays put). This is the separator-intersection bound turned
// into a service-level measurement; if fan-out stopped being a
// vanishing minority, sharding would stop scaling.
TEST(ServiceShardFanout, BoundaryFanoutDecaysAsNGrows) {
  auto& pool = par::ThreadPool::global();
  const std::size_t sizes[] = {1500, 6000, 24000};
  const std::size_t k = 8;
  double fanout[3] = {0, 0, 0};
  for (int t = 0; t < 3; ++t) {
    Rng rng(7000 + t);
    auto points = workload::uniform_cube<2>(sizes[t], rng);
    ShardRouter<2> router(std::span<const Pt>(points),
                          router_config(4, 7100), pool);
    ASSERT_GE(router.shard_count(), 2u);
    std::vector<Pt> queries;
    for (int i = 0; i < 384; ++i)
      queries.push_back({{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)}});
    router.bulk_knn(std::span<const Pt>(queries), k);
    auto s = router.stats();
    ASSERT_EQ(s.submitted, queries.size());
    fanout[t] = s.boundary_fanout;
  }
  // Boundary-heavy at the small end (uniform queries over a 4-shard
  // cut do cross it), a vanishing minority at the large end.
  EXPECT_GT(fanout[0], 0.0);
  EXPECT_GT(fanout[0], fanout[2]);
  EXPECT_LE(fanout[2], 0.6 * fanout[0] + 1e-9)
      << "boundary fan-out is not decaying: " << fanout[0] << " -> "
      << fanout[1] << " -> " << fanout[2];
}

// Sharded persistence: save_current writes one file per shard plus a
// manifest (written last — the commit point); bootstrapping from the
// manifest restores the exact live set, pending deltas included.
TEST(ServiceShardPersistence, SaveBootstrapRoundTrip) {
  auto& pool = par::ThreadPool::global();
  Rng rng(7200);
  auto points = workload::uniform_cube<2>(500, rng);
  const ShardRouterConfig cfg = router_config(4, rng.next());
  ShardRouter<2> router(std::span<const Pt>(points), cfg, pool);
  ASSERT_GE(router.shard_count(), 2u);

  // Mutate so the save carries pending deltas: inserts land in every
  // shard's delta tier, removes tombstone base points.
  LiveOracle oracle;
  for (std::size_t i = 0; i < points.size(); ++i)
    oracle.live.emplace(static_cast<std::uint32_t>(i), points[i]);
  for (std::uint32_t i = 0; i < 40; ++i) {
    const Pt p{{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)}};
    router.insert(10000 + i, p);
    oracle.live.emplace(10000 + i, p);
  }
  for (std::uint32_t i = 0; i < 30; ++i) {
    const std::uint32_t id = oracle.any_id(rng);
    router.remove(id);
    oracle.live.erase(id);
  }

  const std::string path = temp_path("shard_roundtrip.sepdc");
  EXPECT_EQ(router.last_saved_seq(), 0u);
  ASSERT_TRUE(router.save_current(path));
  EXPECT_EQ(router.last_saved_seq(), 1u);

  ShardRouter<2> restored(path, cfg, pool);
  EXPECT_EQ(restored.shard_count(), router.shard_count());
  EXPECT_EQ(restored.live_count(), oracle.live.size());
  for (int i = 0; i < 32; ++i) {
    const Pt q{{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)}};
    expect_knn_equal(restored.knn(q, 4), oracle.knn(q, 4),
                     "restored knn " + std::to_string(i));
    expect_radius_equal(restored.radius(q, 0.12), oracle.radius(q, 0.12),
                        "restored radius " + std::to_string(i));
  }
  // The restored router keeps working: updates and a second save.
  restored.insert(99999, Pt{{0.5, 0.5}});
  EXPECT_TRUE(restored.contains(99999));
  ASSERT_TRUE(restored.save_current(temp_path("shard_roundtrip2.sepdc")));
}

// A delta-only router (no base built yet) saves in the stub format and
// bootstraps to the identical live set.
TEST(ServiceShardPersistence, DeltaOnlyStubRoundTrip) {
  auto& pool = par::ThreadPool::global();
  Rng rng(7300);
  ShardRouterConfig cfg = router_config(1, rng.next());
  cfg.broker.delta_compaction_threshold = 0;  // stay delta-only
  ShardRouter<2> router(std::span<const Pt>{}, cfg, pool);
  EXPECT_EQ(router.shard_count(), 1u);

  LiveOracle oracle;
  std::vector<std::uint32_t> ids;
  std::vector<Pt> pts;
  for (std::uint32_t i = 0; i < 48; ++i) {
    ids.push_back(i);
    pts.push_back(Pt{{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)}});
    oracle.live.emplace(ids.back(), pts.back());
  }
  router.insert_bulk(ids, pts);

  const std::string path = temp_path("shard_stub.sepdc");
  ASSERT_TRUE(router.save_current(path));
  ShardRouter<2> restored(path, cfg, pool);
  EXPECT_EQ(restored.live_count(), oracle.live.size());
  const Pt q{{0.4, 0.6}};
  expect_knn_equal(restored.knn(q, 6), oracle.knn(q, 6), "stub knn");
  expect_radius_equal(restored.radius(q, 0.3), oracle.radius(q, 0.3),
                      "stub radius");
}

// Torn saves are rejected: shard files carry the cut checksum of the
// save they belong to, and bootstrap refuses a manifest whose shard
// files disagree with it — the residual risk of the manifest-last
// protocol is a crash *between* two saves leaving old shard files
// behind, and the checksum is what catches the mix.
TEST(ServiceShardPersistence, TornSaveMixRejected) {
  auto& pool = par::ThreadPool::global();
  Rng rng(7400);
  auto points_a = workload::uniform_cube<2>(400, rng);
  auto points_b =
      workload::generate<2>(workload::Kind::GaussianClusters, 400, rng);
  const std::string path_a = temp_path("shard_torn_a.sepdc");
  const std::string path_b = temp_path("shard_torn_b.sepdc");
  const ShardRouterConfig cfg = router_config(4, rng.next());
  {
    ShardRouter<2> a(std::span<const Pt>(points_a), cfg, pool);
    ShardRouter<2> b(std::span<const Pt>(points_b), cfg, pool);
    ASSERT_GE(a.shard_count(), 2u);
    ASSERT_EQ(b.shard_count(), a.shard_count());
    ASSERT_TRUE(a.save_current(path_a));
    ASSERT_TRUE(b.save_current(path_b));
  }
  // Splice one of B's shard files into A's save: a different cut, so a
  // different checksum, so bootstrap must refuse.
  std::filesystem::copy_file(
      ShardRouter<2>::shard_path(path_b, 0),
      ShardRouter<2>::shard_path(path_a, 0),
      std::filesystem::copy_options::overwrite_existing);
  EXPECT_THROW(ShardRouter<2>(path_a, cfg, pool), io::SnapshotIoError);

  // A plain (unsharded) snapshot is not a manifest either.
  Rng rng2(7500);
  auto pts = workload::uniform_cube<2>(64, rng2);
  BrokerConfig bcfg;
  QueryBroker<2> broker(std::span<const Pt>(pts), bcfg, pool);
  const std::string plain = temp_path("shard_torn_plain.sepdc");
  ASSERT_TRUE(broker.save_snapshot(plain));
  EXPECT_THROW(ShardRouter<2>(plain, cfg, pool), io::SnapshotIoError);
}

// Router-level validation mirrors the broker's: typed QueryError naming
// the offending field, thrown before any shard mutates.
TEST(ServiceShardValidation, InvalidRequestsThrowBeforeRouting) {
  auto& pool = par::ThreadPool::global();
  Rng rng(7600);
  auto points = workload::uniform_cube<2>(200, rng);
  ShardRouter<2> router(std::span<const Pt>(points),
                        router_config(4, rng.next()), pool);

  EXPECT_THROW(router.knn(Pt{{0.5, 0.5}}, 0), QueryError);
  EXPECT_THROW(router.radius(Pt{{0.5, 0.5}}, -1.0), QueryError);
  EXPECT_THROW(router.knn(Pt{{0.5, 0.5}}, 3, microseconds(-5)),
               QueryError);
  EXPECT_THROW(router.insert(0xffffffffu, Pt{{0.5, 0.5}}), QueryError);
  EXPECT_THROW(router.insert(5, Pt{{0.5, 0.5}}), QueryError);  // live
  EXPECT_THROW(router.remove(99999), QueryError);
  // A bulk insert with one bad element applies nothing anywhere.
  std::vector<std::uint32_t> ids{1000, 1001, 5};
  std::vector<Pt> pts{Pt{{0.1, 0.1}}, Pt{{0.2, 0.2}}, Pt{{0.3, 0.3}}};
  EXPECT_THROW(router.insert_bulk(ids, pts), QueryError);
  EXPECT_FALSE(router.contains(1000)) << "partial bulk insert applied";
  EXPECT_EQ(router.live_count(), points.size());
  auto s = router.stats();
  EXPECT_EQ(s.submitted, 0u);
  EXPECT_EQ(s.updates_submitted, 0u);
}

}  // namespace
}  // namespace sepdc::service
