#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace sepdc::par {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  TaskGroup group(pool);
  for (int i = 0; i < 100; ++i) group.run([&] { counter.fetch_add(1); });
  group.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SingleThreadStillCompletes) {
  ThreadPool pool(1);  // zero workers: everything runs via helping waits
  std::atomic<int> counter{0};
  TaskGroup group(pool);
  for (int i = 0; i < 50; ++i) group.run([&] { counter.fetch_add(1); });
  group.wait();
  EXPECT_EQ(counter.load(), 50);
}

// Recursive fork-join must not deadlock even when tasks outnumber workers.
int fib(ThreadPool& pool, int n) {
  if (n <= 1) return n;
  int a = 0, b = 0;
  TaskGroup group(pool);
  group.run([&] { a = fib(pool, n - 1); });
  b = fib(pool, n - 2);
  group.wait();
  return a + b;
}

TEST(ThreadPool, NestedForkJoin) {
  ThreadPool pool(2);
  EXPECT_EQ(fib(pool, 15), 610);
}

TEST(ThreadPool, ExceptionPropagatesFromWait) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.run([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(ThreadPool, StatsCountEveryTaskExactly) {
  ThreadPool pool(3);
  constexpr int kTasks = 200;
  std::atomic<int> counter{0};
  TaskGroup group(pool);
  for (int i = 0; i < kTasks; ++i)
    group.run([&] { counter.fetch_add(1); });
  group.wait();

  auto s = pool.stats();
  EXPECT_EQ(s.tasks_executed, static_cast<std::uint64_t>(kTasks));
  // Each executed task contributes one wait and one run observation.
  EXPECT_EQ(s.task_wait.count(), static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(s.task_run.count(), static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(s.concurrency, pool.concurrency());
  EXPECT_GT(s.lifetime_ns, 0u);
  // busy_ns is the sum of task-body durations, so it can never exceed
  // concurrency * lifetime — utilization is a fraction.
  EXPECT_GE(s.utilization(), 0.0);
  EXPECT_LE(s.utilization(), 1.0);
  EXPECT_EQ(s.busy_ns, s.task_run.sum());
}

TEST(ThreadPool, StatsCountHelpedTasksToo) {
  ThreadPool pool(1);  // zero workers: every task runs via helping waits
  TaskGroup group(pool);
  for (int i = 0; i < 25; ++i) group.run([] {});
  group.wait();
  EXPECT_EQ(pool.stats().tasks_executed, 25u);
}

TEST(ThreadPool, WaitOnEmptyGroupReturnsImmediately) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.wait();  // no tasks: must not hang
  SUCCEED();
}

TEST(ThreadPool, GroupReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  TaskGroup group(pool);
  group.run([&] { counter.fetch_add(1); });
  group.wait();
  group.run([&] { counter.fetch_add(1); });
  group.wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, ConcurrencyCountsCaller) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.concurrency(), 3u);
}

// Protocol assertion for the static-analysis pass: the worker count is
// immutable after construction, so concurrency() must be callable from
// any thread, lock-free, at any time — including while tasks run and
// other threads hammer the queue. Under TSan this test also proves the
// unguarded read is race-free; under -Wthread-safety the `const` member
// is what lets concurrency() compile without holding the pool mutex.
TEST(ThreadPool, ConcurrencyIsImmutableAndLockFreeUnderLoad) {
  ThreadPool pool(4);
  const unsigned expected = pool.concurrency();
  std::atomic<int> work{0};
  std::atomic<bool> mismatch{false};
  TaskGroup group(pool);
  for (int i = 0; i < 64; ++i)
    group.run([&] {
      if (pool.concurrency() != expected) mismatch.store(true);
      work.fetch_add(1);
    });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t)
    readers.emplace_back([&] {
      for (int i = 0; i < 1000; ++i)
        if (pool.concurrency() != expected) mismatch.store(true);
    });
  group.wait();
  for (auto& t : readers) t.join();
  EXPECT_EQ(work.load(), 64);
  EXPECT_FALSE(mismatch.load());
}

// Protocol assertion for the shutdown flag: stopping_ is only ever
// written/read under the pool mutex, so destroying a pool while workers
// sleep on the condvar, or immediately after a burst of work, must be
// clean — no lost wakeup, no worker touching the flag unlocked.
TEST(ThreadPool, ShutdownWithIdleAndBusyWorkersIsClean) {
  for (int round = 0; round < 8; ++round) {
    ThreadPool pool(4);
    if (round % 2 == 0) {
      // Idle teardown: workers are parked in the condvar wait.
      std::this_thread::yield();
    } else {
      // Busy teardown: destroy right after the last task drains.
      TaskGroup group(pool);
      std::atomic<int> n{0};
      for (int i = 0; i < 128; ++i) group.run([&] { n.fetch_add(1); });
      group.wait();
      EXPECT_EQ(n.load(), 128);
    }
  }
  SUCCEED();
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  ThreadPool& pool = ThreadPool::global();
  std::atomic<int> counter{0};
  TaskGroup group(pool);
  for (int i = 0; i < 10; ++i) group.run([&] { counter.fetch_add(1); });
  group.wait();
  EXPECT_EQ(counter.load(), 10);
  EXPECT_GE(pool.concurrency(), 1u);
}

TEST(ThreadPool, SubmitReturnsWaitableHandle) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  Waitable handle = pool.submit([&] { value.store(42); });
  handle.wait();
  EXPECT_EQ(value.load(), 42);
  EXPECT_FALSE(handle.valid());  // consumed by wait()
}

TEST(ThreadPool, SubmitWorksOnZeroWorkerPool) {
  ThreadPool pool(1);  // zero workers: wait() must help to make progress
  std::atomic<int> value{0};
  Waitable handle = pool.submit([&] { value.store(7); });
  handle.wait();
  EXPECT_EQ(value.load(), 7);
}

TEST(ThreadPool, SubmitExceptionRethrownFromWait) {
  ThreadPool pool(2);
  Waitable handle =
      pool.submit([] { throw std::runtime_error("submit boom"); });
  EXPECT_THROW(handle.wait(), std::runtime_error);
}

TEST(ThreadPool, WaitableDestructorJoinsAndSwallows) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  {
    Waitable handle = pool.submit([&] { value.store(5); });
    Waitable moved = std::move(handle);
    EXPECT_FALSE(handle.valid());
    // `moved` destroyed without wait(): must join, not crash.
  }
  EXPECT_EQ(value.load(), 5);
  {
    Waitable erring = pool.submit([] { throw std::runtime_error("x"); });
    // Destructor swallows the error.
  }
  SUCCEED();
}

TEST(ThreadPool, ManyConcurrentGroups) {
  ThreadPool pool(4);
  std::vector<long> results(8, 0);
  TaskGroup outer(pool);
  for (std::size_t g = 0; g < results.size(); ++g) {
    outer.run([&, g] {
      TaskGroup inner(pool);
      std::atomic<long> sum{0};
      for (int i = 1; i <= 100; ++i) inner.run([&, i] { sum.fetch_add(i); });
      inner.wait();
      results[g] = sum.load();
    });
  }
  outer.wait();
  for (long r : results) EXPECT_EQ(r, 5050);
}

}  // namespace
}  // namespace sepdc::par
