// Lemma 6.1, directly: when a sphere S partitions P into P_I / P_E, the
// only local k-neighborhood balls that can differ from the global ones
// are those crossing S — formally, every crossing local ball's index also
// has a crossing global ball (a local ball strictly inside/outside S
// already equals its global counterpart). This is the soundness of
// correcting nothing but the cut balls.
#include <gtest/gtest.h>

#include <set>

#include "geometry/constants.hpp"
#include "knn/brute_force.hpp"
#include "knn/neighborhood.hpp"
#include "separator/mttv.hpp"
#include "separator/quality.hpp"
#include "workload/generators.hpp"

namespace sepdc {
namespace {

struct Lemma61Case {
  workload::Kind kind;
  std::size_t k;
};

class Lemma61 : public ::testing::TestWithParam<Lemma61Case> {};

TEST_P(Lemma61, CrossingLocalsImplyCrossingGlobalsAndEqualityElsewhere) {
  auto [kind, k] = GetParam();
  Rng rng(600 + static_cast<std::uint64_t>(kind) * 10 + k);
  auto& pool = par::ThreadPool::global();
  const std::size_t n = 1200;
  auto points = workload::generate<2>(kind, n, rng);
  std::span<const geo::Point<2>> span(points);

  // An accepted sphere separator of the point set.
  separator::SphereSeparatorSampler<2> sampler(span, rng);
  std::optional<geo::SeparatorShape<2>> shape;
  const double delta = geo::splitting_ratio(2) + 0.05;
  for (int t = 0; t < 200 && !shape; ++t) {
    auto candidate = sampler.draw(rng);
    if (!candidate) continue;
    auto counts = separator::split_counts<2>(span, *candidate);
    if (counts.inner && counts.outer && counts.max_fraction() <= delta)
      shape = candidate;
  }
  ASSERT_TRUE(shape.has_value());

  // Split the points; remember each side's global indices.
  std::vector<geo::Point<2>> interior, exterior;
  std::vector<std::size_t> interior_ids, exterior_ids;
  for (std::size_t i = 0; i < n; ++i) {
    if (shape->classify(points[i]) == geo::Side::Inner) {
      interior.push_back(points[i]);
      interior_ids.push_back(i);
    } else {
      exterior.push_back(points[i]);
      exterior_ids.push_back(i);
    }
  }

  // Global and per-side k-neighborhood systems.
  auto global = knn::brute_force_parallel<2>(pool, span, k);
  auto local_i = knn::brute_force_parallel<2>(
      pool, std::span<const geo::Point<2>>(interior), k);
  auto local_e = knn::brute_force_parallel<2>(
      pool, std::span<const geo::Point<2>>(exterior), k);

  auto check_side = [&](const std::vector<geo::Point<2>>& side_points,
                        const std::vector<std::size_t>& ids,
                        const knn::KnnResult& local) {
    for (std::size_t s = 0; s < side_points.size(); ++s) {
      std::size_t gid = ids[s];
      geo::Ball<2> local_ball{side_points[s],
                              std::sqrt(local.radius2(s))};
      geo::Ball<2> global_ball{points[gid],
                               std::sqrt(global.radius2(gid))};
      // Local neighborhoods only shrink when the other side is added.
      EXPECT_GE(local_ball.radius, global_ball.radius - 1e-12);

      bool local_crosses =
          shape->classify(local_ball) == geo::Region::Cut;
      if (!local_crosses) {
        // Lemma 6.1's payoff: a non-crossing local ball IS the global
        // ball — its row needs no correction.
        EXPECT_DOUBLE_EQ(local_ball.radius, global_ball.radius)
            << "uncut local ball differed from global, point " << gid;
      } else {
        // Crossing locals must correspond to crossing globals OR be
        // already equal (the proof's dichotomy).
        bool global_crosses =
            shape->classify(global_ball) == geo::Region::Cut;
        EXPECT_TRUE(global_crosses ||
                    local_ball.radius == global_ball.radius)
            << "crossing local ball with non-crossing, different global, "
               "point "
            << gid;
      }
    }
  };
  check_side(interior, interior_ids, local_i);
  check_side(exterior, exterior_ids, local_e);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Lemma61,
    ::testing::Values(Lemma61Case{workload::Kind::UniformCube, 1},
                      Lemma61Case{workload::Kind::UniformCube, 3},
                      Lemma61Case{workload::Kind::GaussianClusters, 2},
                      Lemma61Case{workload::Kind::GridJitter, 1},
                      Lemma61Case{workload::Kind::SphereShell, 2}));

}  // namespace
}  // namespace sepdc
