// §3: the neighborhood query structure — correctness against linear scan,
// and the Q/S/T bounds' structural ingredients (height, leaf count,
// duplication).
#include "core/query_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <mutex>

#include "knn/brute_force.hpp"
#include "knn/neighborhood.hpp"
#include "workload/generators.hpp"

namespace sepdc::core {
namespace {

template <int D>
std::vector<geo::Ball<D>> make_system(std::size_t n, std::size_t k,
                                      workload::Kind kind, Rng& rng) {
  auto pts = workload::generate<D>(kind, n, rng);
  std::span<const geo::Point<D>> span(pts);
  auto r = knn::brute_force_parallel<D>(par::ThreadPool::global(), span, k);
  return knn::neighborhood_system<D>(span, r);
}

template <int D>
std::vector<std::uint32_t> linear_query(
    const std::vector<geo::Ball<D>>& balls, const geo::Point<D>& p,
    Containment mode) {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < balls.size(); ++i) {
    double d2 = geo::distance2(balls[i].center, p);
    double r2 = balls[i].radius * balls[i].radius;
    bool hit = mode == Containment::Interior ? d2 < r2 : d2 <= r2;
    if (hit) out.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

struct QueryCase {
  workload::Kind kind;
  std::size_t n;
  std::size_t k;
};

class QueryTreeCorrectness : public ::testing::TestWithParam<QueryCase> {};

TEST_P(QueryTreeCorrectness, MatchesLinearScan2D) {
  auto [kind, n, k] = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(kind) * 10 + k);
  auto balls = make_system<2>(n, k, kind, rng);
  typename NeighborhoodQueryTree<2>::Params params;
  params.leaf_size = 16;
  NeighborhoodQueryTree<2> tree(balls, params, rng.split(),
                                par::ThreadPool::global());

  // Query at every ball center plus random probes.
  for (std::size_t q = 0; q < n + 200; ++q) {
    geo::Point<2> p;
    if (q < n) {
      p = balls[q].center;
    } else {
      p = geo::Point<2>{{rng.uniform(-0.2, 1.2), rng.uniform(-0.2, 1.2)}};
    }
    std::vector<std::uint32_t> got;
    tree.query(p, got, Containment::Interior);
    std::sort(got.begin(), got.end());
    auto expect = linear_query<2>(balls, p, Containment::Interior);
    ASSERT_EQ(got, expect) << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, QueryTreeCorrectness,
    ::testing::Values(QueryCase{workload::Kind::UniformCube, 600, 1},
                      QueryCase{workload::Kind::UniformCube, 600, 4},
                      QueryCase{workload::Kind::GaussianClusters, 500, 2},
                      QueryCase{workload::Kind::AdversarialSlab, 400, 2},
                      QueryCase{workload::Kind::Duplicates, 400, 3},
                      QueryCase{workload::Kind::NearCollinear, 400, 1}));

TEST(QueryTree, ClosedVsInteriorContainment) {
  // Balls with a probe exactly on the boundary.
  std::vector<geo::Ball<2>> balls{{{{0.0, 0.0}}, 1.0}, {{{3.0, 0.0}}, 1.0}};
  typename NeighborhoodQueryTree<2>::Params params;
  params.leaf_size = 1;
  Rng rng(3);
  NeighborhoodQueryTree<2> tree(balls, params, rng,
                                par::ThreadPool::global());
  geo::Point<2> boundary{{1.0, 0.0}};
  std::vector<std::uint32_t> interior, closed;
  tree.query(boundary, interior, Containment::Interior);
  tree.query(boundary, closed, Containment::Closed);
  EXPECT_TRUE(interior.empty());
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0], 0u);
}

TEST(QueryTree, HeightIsLogarithmic) {
  Rng rng(5);
  std::vector<double> ns, heights;
  for (std::size_t n : {512u, 2048u, 8192u}) {
    auto balls = make_system<2>(n, 1, workload::Kind::UniformCube, rng);
    typename NeighborhoodQueryTree<2>::Params params;
    NeighborhoodQueryTree<2> tree(balls, params, rng.split(),
                                  par::ThreadPool::global());
    ns.push_back(static_cast<double>(n));
    heights.push_back(static_cast<double>(tree.height()));
    // Height within a constant factor of log2(n / m0).
    double log_n = std::log2(static_cast<double>(n));
    EXPECT_LE(tree.height(), 4.0 * log_n) << "n=" << n;
  }
  // Height grows sub-linearly: quadrupling n adds only a few levels.
  EXPECT_LE(heights[2] - heights[0], 14.0);
}

TEST(QueryTree, LinearSpace) {
  Rng rng(6);
  const std::size_t n = 8192;
  auto balls = make_system<2>(n, 1, workload::Kind::UniformCube, rng);
  typename NeighborhoodQueryTree<2>::Params params;
  params.leaf_size = 64;
  NeighborhoodQueryTree<2> tree(balls, params, rng.split(),
                                par::ThreadPool::global());
  // S(n,d) = O(n): stored balls (with duplication) stay within a small
  // factor of n, and leaves are O(n / m0).
  EXPECT_LT(tree.stored_balls(), 3 * n);
  EXPECT_LT(tree.leaf_count(), 4 * n / params.leaf_size + 4);
}

TEST(QueryTree, QueryVisitsFewNodes) {
  Rng rng(7);
  const std::size_t n = 8192;
  auto balls = make_system<2>(n, 2, workload::Kind::UniformCube, rng);
  typename NeighborhoodQueryTree<2>::Params params;
  NeighborhoodQueryTree<2> tree(balls, params, rng.split(),
                                par::ThreadPool::global());
  std::vector<std::uint32_t> out;
  std::size_t worst = 0;
  for (int q = 0; q < 256; ++q) {
    out.clear();
    geo::Point<2> p{{rng.uniform(), rng.uniform()}};
    worst = std::max(worst, tree.query(p, out));
  }
  // Q(n,d) = O(k + log n): path length bounded by the height.
  EXPECT_LE(worst, tree.height() + 1);
}

TEST(QueryTree, BatchQueryMatchesSingleQueries) {
  Rng rng(8);
  const std::size_t n = 700;
  auto balls = make_system<2>(n, 3, workload::Kind::GaussianClusters, rng);
  typename NeighborhoodQueryTree<2>::Params params;
  params.leaf_size = 16;
  NeighborhoodQueryTree<2> tree(balls, params, rng.split(),
                                par::ThreadPool::global());

  std::vector<geo::Point<2>> probes(300);
  for (auto& p : probes) p = {{rng.uniform(), rng.uniform()}};

  std::vector<std::vector<std::uint32_t>> batch(probes.size());
  std::mutex guard;  // ranks are disjoint, but keep the test conservative
  pvm::Cost cost = tree.batch_query(
      par::ThreadPool::global(), probes.size(),
      [&](std::size_t rank) { return probes[rank]; },
      [&](std::size_t rank, std::uint32_t ball, double) {
        batch[rank].push_back(ball);
      },
      Containment::Closed);
  EXPECT_GT(cost.work, 0u);
  EXPECT_GT(cost.depth, 0u);

  for (std::size_t rank = 0; rank < probes.size(); ++rank) {
    std::sort(batch[rank].begin(), batch[rank].end());
    std::vector<std::uint32_t> single;
    tree.query(probes[rank], single, Containment::Closed);
    std::sort(single.begin(), single.end());
    EXPECT_EQ(batch[rank], single) << "rank " << rank;
  }
}

TEST(QueryTree, AllIdenticalCentersForcedLeaf) {
  std::vector<geo::Ball<2>> balls(300, geo::Ball<2>{{{1.0, 1.0}}, 0.5});
  typename NeighborhoodQueryTree<2>::Params params;
  params.leaf_size = 16;
  Rng rng(9);
  NeighborhoodQueryTree<2> tree(balls, params, rng,
                                par::ThreadPool::global());
  EXPECT_GE(tree.stats().forced_leaves, 1u);
  std::vector<std::uint32_t> out;
  tree.query(geo::Point<2>{{1.0, 1.0}}, out, Containment::Interior);
  EXPECT_EQ(out.size(), 300u);  // all balls contain their common center
}

TEST(QueryTree, InfiniteRadiusBallsAlwaysReported) {
  std::vector<geo::Ball<2>> balls{
      {{{0.0, 0.0}}, std::numeric_limits<double>::infinity()},
      {{{5.0, 5.0}}, 0.1}};
  typename NeighborhoodQueryTree<2>::Params params;
  Rng rng(10);
  NeighborhoodQueryTree<2> tree(balls, params, rng,
                                par::ThreadPool::global());
  std::vector<std::uint32_t> out;
  tree.query(geo::Point<2>{{100.0, -50.0}}, out, Containment::Interior);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
}

TEST(QueryTree, BuildCostScalesNearLinearly) {
  Rng rng(11);
  auto small = make_system<2>(1024, 1, workload::Kind::UniformCube, rng);
  auto large = make_system<2>(8192, 1, workload::Kind::UniformCube, rng);
  typename NeighborhoodQueryTree<2>::Params params;
  NeighborhoodQueryTree<2> ts(small, params, rng.split(),
                              par::ThreadPool::global());
  NeighborhoodQueryTree<2> tl(large, params, rng.split(),
                              par::ThreadPool::global());
  // Work within n polylog(n); depth (parallel build) grows ~ log n, not n.
  EXPECT_LT(tl.stats().cost.work,
            200.0 * 8192 * std::log2(8192.0));
  EXPECT_LT(tl.stats().cost.depth, 40 * pvm::ceil_log2(8192));
  EXPECT_GE(tl.stats().cost.depth, ts.stats().cost.depth);
}

}  // namespace
}  // namespace sepdc::core
