// Boundary-tie differential suite: radius queries whose radius lands
// *exactly* on inter-point distances.
//
// On an integer lattice, radii like 1, sqrt(2), 2, and 5 (= |(3,4)|) hit
// whole rings of points at distance exactly r. The closed-ball contract
// (docs/kernels.md) says every radius path in the library — the direct
// scan oracle, KdTree::for_each_in_ball (the service's punt fallback),
// SeparatorIndex::for_each_in_ball, SeparatorIndex::batch_radius, and
// the QueryBroker's batched and punted routes — must agree on those
// boundary points bit for bit. Before the fix the kd-tree implemented an
// open ball and silently dropped every on-boundary point here.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/separator_index.hpp"
#include "knn/kdtree.hpp"
#include "service/query_broker.hpp"
#include "support/rng.hpp"

namespace sepdc {
namespace {

using Pt = geo::Point<2>;
using Hit = std::pair<std::uint32_t, double>;
using std::chrono::microseconds;

// 13x13 unit lattice: plenty of exact-distance rings inside the grid.
std::vector<Pt> lattice(int side) {
  std::vector<Pt> pts;
  pts.reserve(static_cast<std::size_t>(side) * side);
  for (int y = 0; y < side; ++y)
    for (int x = 0; x < side; ++x)
      pts.push_back(Pt{{static_cast<double>(x), static_cast<double>(y)}});
  return pts;
}

// The contract's reference implementation: closed ball via the identical
// threshold computation (radius * radius, compared with <=).
std::vector<Hit> oracle_ball(std::span<const Pt> pts, const Pt& c,
                             double radius) {
  std::vector<Hit> hits;
  const double r2 = radius * radius;
  for (std::size_t j = 0; j < pts.size(); ++j) {
    double d2 = geo::distance2(pts[j], c);
    if (d2 <= r2) hits.emplace_back(static_cast<std::uint32_t>(j), d2);
  }
  return hits;
}

void sort_by_id(std::vector<Hit>& hits) {
  std::sort(hits.begin(), hits.end());
}

// Radii that land exactly on lattice distances (1, sqrt2, 2, sqrt5, 5 =
// the (3,4,5) triple) plus one irrational that lands on none.
const double kBoundaryRadii[] = {1.0, std::sqrt(2.0), 2.0, std::sqrt(5.0),
                                 5.0, 1.75};

TEST(BoundaryTies, KdTreeMatchesOracleOnExactRadii) {
  auto pts = lattice(13);
  std::span<const Pt> span(pts);
  knn::KdTree<2> tree(span, 8);
  // Query from lattice points (boundary ties guaranteed) and from
  // off-lattice points (no ties; sanity).
  std::vector<Pt> centers{pts[0], pts[84], pts[168], Pt{{6.5, 6.5}},
                          Pt{{3.0, 4.0}}};
  for (const Pt& c : centers) {
    for (double r : kBoundaryRadii) {
      auto expect = oracle_ball(span, c, r);
      std::vector<Hit> got;
      tree.for_each_in_ball(
          c, r, [&](std::uint32_t id, double d2) { got.emplace_back(id, d2); });
      sort_by_id(got);
      sort_by_id(expect);
      // Exact equality, distances included: boundary points carry
      // d2 == r*r bit for bit.
      EXPECT_EQ(got, expect) << "center " << c << " radius " << r;
    }
  }
}

TEST(BoundaryTies, SeparatorIndexPathsMatchOracle) {
  auto pts = lattice(13);
  std::span<const Pt> span(pts);
  auto& pool = par::ThreadPool::global();
  core::SeparatorIndexConfig cfg;
  cfg.seed = 2024;
  core::SeparatorIndex<2> index(span, cfg, pool);

  std::vector<Pt> centers{pts[0], pts[90], Pt{{6.0, 6.0}}, Pt{{0.5, 0.5}}};
  for (double r : kBoundaryRadii) {
    // Single-query march.
    for (const Pt& c : centers) {
      auto expect = oracle_ball(span, c, r);
      std::vector<Hit> got;
      index.for_each_in_ball(
          c, r, [&](std::uint32_t id, double d2) { got.emplace_back(id, d2); });
      sort_by_id(got);
      sort_by_id(expect);
      EXPECT_EQ(got, expect) << "center " << c << " radius " << r;
    }
    // Batched level-synchronous march.
    auto rows = index.batch_radius(pool, std::span<const Pt>(centers), r);
    ASSERT_EQ(rows.size(), centers.size());
    for (std::size_t q = 0; q < centers.size(); ++q) {
      auto expect = oracle_ball(span, centers[q], r);
      auto got = rows[q];
      sort_by_id(got);
      sort_by_id(expect);
      EXPECT_EQ(got, expect) << "batched center " << centers[q] << " radius "
                             << r;
    }
  }
}

TEST(BoundaryTies, ZeroRadiusFindsCoincidentEverywhere) {
  auto pts = lattice(5);
  std::span<const Pt> span(pts);
  auto& pool = par::ThreadPool::global();
  knn::KdTree<2> tree(span, 4);
  core::SeparatorIndexConfig cfg;
  cfg.seed = 99;
  core::SeparatorIndex<2> index(span, cfg, pool);
  // Closed ball of radius 0 centered on a lattice point = that point.
  for (std::uint32_t id : {0u, 7u, 24u}) {
    std::vector<Hit> kd_hits, idx_hits;
    tree.for_each_in_ball(pts[id], 0.0, [&](std::uint32_t j, double d2) {
      kd_hits.emplace_back(j, d2);
    });
    index.for_each_in_ball(pts[id], 0.0, [&](std::uint32_t j, double d2) {
      idx_hits.emplace_back(j, d2);
    });
    EXPECT_EQ(kd_hits, (std::vector<Hit>{{id, 0.0}}));
    EXPECT_EQ(idx_hits, (std::vector<Hit>{{id, 0.0}}));
  }
}

// Punted and batched broker radius answers must be byte-identical on
// boundary inputs: the punt route answers inline via the kd-tree /
// direct index march, the batched route via batch_radius — divergent
// open/closed semantics between them was the headline bug.
TEST(BoundaryTies, BrokerPuntedEqualsBatchedOnBoundaryRadii) {
  auto pts = lattice(13);
  std::span<const Pt> span(pts);
  auto& pool = par::ThreadPool::global();

  std::vector<Pt> queries{pts[0], pts[84], pts[168], Pt{{3.0, 4.0}},
                          Pt{{6.5, 6.5}}, pts[12]};
  for (double r : {1.0, std::sqrt(2.0), 5.0}) {
    // Batched: generous deadline, nothing punts.
    service::BrokerConfig batched_cfg;
    batched_cfg.max_batch = 64;
    batched_cfg.flush_interval = microseconds(200);
    batched_cfg.index.seed = 7;
    service::QueryBroker<2> batched(span, batched_cfg, pool);
    auto batched_rows = batched.bulk_radius(std::span<const Pt>(queries), r,
                                            microseconds(1'000'000));

    // Punted: deadline budget far below the flush interval forces the
    // inline fallback for every query (the PR 4 punt-forcing shape).
    service::BrokerConfig punt_cfg;
    punt_cfg.max_batch = 64;
    punt_cfg.flush_interval = microseconds(100000);
    punt_cfg.index.seed = 7;
    service::QueryBroker<2> punted(span, punt_cfg, pool);
    auto punted_rows = punted.bulk_radius(std::span<const Pt>(queries), r,
                                          microseconds(50));
    auto ps = punted.stats();
    ASSERT_EQ(ps.punted, queries.size());

    ASSERT_EQ(batched_rows.size(), punted_rows.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(batched_rows[q], punted_rows[q])
          << "query " << queries[q] << " radius " << r;
      // And both equal the closed-ball oracle.
      auto expect = oracle_ball(span, queries[q], r);
      auto got = batched_rows[q];
      sort_by_id(got);
      sort_by_id(expect);
      EXPECT_EQ(got, expect) << "query " << queries[q] << " radius " << r;
    }
  }
}

}  // namespace
}  // namespace sepdc
