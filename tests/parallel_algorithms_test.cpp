#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/parallel_pack.hpp"
#include "parallel/parallel_scan.hpp"
#include "parallel/parallel_sort.hpp"
#include "support/rng.hpp"

namespace sepdc::par {
namespace {

class ParallelAlgorithms : public ::testing::TestWithParam<unsigned> {
 protected:
  ThreadPool pool{GetParam()};
};

TEST_P(ParallelAlgorithms, ParallelForCoversEveryIndexOnce) {
  for (std::size_t n : {0u, 1u, 7u, 1000u, 10001u}) {
    std::vector<std::atomic<int>> hits(n);
    parallel_for(pool, 0, n, [&](std::size_t i) { hits[i].fetch_add(1); },
                 64);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST_P(ParallelAlgorithms, ParallelReduceSum) {
  const std::size_t n = 12345;
  auto total = parallel_reduce(
      pool, 0, n, std::uint64_t{0}, [](std::size_t i) { return i; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; }, 100);
  EXPECT_EQ(total, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST_P(ParallelAlgorithms, ParallelInvokeRunsBoth) {
  int a = 0, b = 0;
  parallel_invoke(pool, [&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST_P(ParallelAlgorithms, ExclusiveScanMatchesSequential) {
  Rng rng(5);
  for (std::size_t n : {0u, 1u, 3u, 100u, 4097u}) {
    std::vector<std::uint64_t> in(n);
    for (auto& v : in) v = rng.below(100);
    std::uint64_t total = 0;
    auto out = exclusive_scan(
        pool, in, std::uint64_t{0},
        [](std::uint64_t a, std::uint64_t b) { return a + b; }, &total, 32);
    std::uint64_t expect = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], expect);
      expect += in[i];
    }
    EXPECT_EQ(total, expect);
  }
}

TEST_P(ParallelAlgorithms, InclusiveScanMatchesSequential) {
  Rng rng(6);
  const std::size_t n = 999;
  std::vector<std::int64_t> in(n);
  for (auto& v : in) v = rng.range(-10, 10);
  auto out = inclusive_scan(
      pool, in, std::int64_t{0},
      [](std::int64_t a, std::int64_t b) { return a + b; }, 64);
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += in[i];
    EXPECT_EQ(out[i], acc);
  }
}

TEST_P(ParallelAlgorithms, ScanWithMaxOperator) {
  std::vector<int> in{3, 1, 4, 1, 5, 9, 2, 6};
  auto out = inclusive_scan(
      pool, in, 0, [](int a, int b) { return std::max(a, b); }, 2);
  std::vector<int> expect{3, 3, 4, 4, 5, 9, 9, 9};
  EXPECT_EQ(out, expect);
}

TEST_P(ParallelAlgorithms, SortMatchesStdSort) {
  Rng rng(7);
  for (std::size_t n : {0u, 1u, 2u, 100u, 5000u, 50000u}) {
    std::vector<std::uint64_t> v(n);
    for (auto& x : v) x = rng.below(1000);
    auto expect = v;
    std::sort(expect.begin(), expect.end());
    parallel_sort(pool, v, std::less<>{}, 128);
    EXPECT_EQ(v, expect);
  }
}

TEST_P(ParallelAlgorithms, SortWithCustomComparator) {
  Rng rng(8);
  std::vector<int> v(3000);
  for (auto& x : v) x = static_cast<int>(rng.below(1000));
  auto expect = v;
  std::sort(expect.begin(), expect.end(), std::greater<>{});
  parallel_sort(pool, v, std::greater<>{}, 64);
  EXPECT_EQ(v, expect);
}

TEST_P(ParallelAlgorithms, SortAlreadySortedAndReversed) {
  std::vector<int> asc(10000);
  std::iota(asc.begin(), asc.end(), 0);
  auto v = asc;
  parallel_sort(pool, v, std::less<>{}, 100);
  EXPECT_EQ(v, asc);
  std::reverse(v.begin(), v.end());
  parallel_sort(pool, v, std::less<>{}, 100);
  EXPECT_EQ(v, asc);
}

TEST_P(ParallelAlgorithms, SortAdversarialPatterns) {
  // Organ pipe (ascending then descending), all-equal, and two-value
  // patterns stress the merge-path split search's tie handling.
  {
    std::vector<int> organ;
    for (int i = 0; i < 5000; ++i) organ.push_back(i);
    for (int i = 5000; i-- > 0;) organ.push_back(i);
    auto expect = organ;
    std::sort(expect.begin(), expect.end());
    parallel_sort(pool, organ, std::less<>{}, 64);
    EXPECT_EQ(organ, expect);
  }
  {
    std::vector<int> equal(8192, 7);
    auto expect = equal;
    parallel_sort(pool, equal, std::less<>{}, 64);
    EXPECT_EQ(equal, expect);
  }
  {
    Rng rng(77);
    std::vector<int> binary(9001);
    for (auto& x : binary) x = rng.coin() ? 1 : 0;
    auto expect = binary;
    std::sort(expect.begin(), expect.end());
    parallel_sort(pool, binary, std::less<>{}, 64);
    EXPECT_EQ(binary, expect);
  }
}

TEST_P(ParallelAlgorithms, PackKeepsOrderAndFilter) {
  Rng rng(9);
  std::vector<int> in(7777);
  for (auto& x : in) x = static_cast<int>(rng.below(100));
  auto evens = parallel_pack(pool, in, [](int x) { return x % 2 == 0; }, 64);
  std::vector<int> expect;
  for (int x : in)
    if (x % 2 == 0) expect.push_back(x);
  EXPECT_EQ(evens, expect);
}

TEST_P(ParallelAlgorithms, PartitionIsStableBothSides) {
  Rng rng(10);
  std::vector<int> v(5001);
  for (auto& x : v) x = static_cast<int>(rng.below(1000));
  auto original = v;
  auto is_small = [](int x) { return x < 500; };
  std::size_t split = parallel_partition(pool, v, is_small, 64);

  std::vector<int> expect_true, expect_false;
  for (int x : original) (is_small(x) ? expect_true : expect_false).push_back(x);
  ASSERT_EQ(split, expect_true.size());
  for (std::size_t i = 0; i < split; ++i) EXPECT_EQ(v[i], expect_true[i]);
  for (std::size_t i = split; i < v.size(); ++i)
    EXPECT_EQ(v[i], expect_false[i - split]);
}

TEST_P(ParallelAlgorithms, PartitionEdgeCases) {
  std::vector<int> empty;
  EXPECT_EQ(parallel_partition(pool, empty, [](int) { return true; }), 0u);
  std::vector<int> all{1, 2, 3};
  EXPECT_EQ(parallel_partition(pool, all, [](int) { return true; }), 3u);
  EXPECT_EQ(parallel_partition(pool, all, [](int) { return false; }), 0u);
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, ParallelAlgorithms,
                         ::testing::Values(1u, 2u, 4u, 8u));

}  // namespace
}  // namespace sepdc::par
