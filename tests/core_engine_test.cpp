// The divide-and-conquer engine (§5 + §6) against the brute-force oracle:
// exact row-for-row agreement (distances AND indices, thanks to the
// deterministic tie-break) across workloads, dimensions, k, and policies.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/api.hpp"
#include "knn/brute_force.hpp"
#include "knn/kdtree.hpp"
#include "workload/generators.hpp"

namespace sepdc::core {
namespace {

template <int D>
void expect_rows_equal(const knn::KnnResult& got,
                       const knn::KnnResult& expect) {
  ASSERT_EQ(got.n, expect.n);
  ASSERT_EQ(got.k, expect.k);
  for (std::size_t i = 0; i < got.n; ++i) {
    ASSERT_EQ(std::vector<double>(got.row_dist2(i).begin(),
                                  got.row_dist2(i).end()),
              std::vector<double>(expect.row_dist2(i).begin(),
                                  expect.row_dist2(i).end()))
        << "distances differ at point " << i;
    ASSERT_EQ(std::vector<std::uint32_t>(got.row_neighbors(i).begin(),
                                         got.row_neighbors(i).end()),
              std::vector<std::uint32_t>(expect.row_neighbors(i).begin(),
                                         expect.row_neighbors(i).end()))
        << "indices differ at point " << i;
  }
}

struct EngineCase {
  workload::Kind kind;
  std::size_t n;
  std::size_t k;
  PartitionRule partition;
  CorrectionPolicy correction;
};

class EngineOracle2D : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineOracle2D, MatchesBruteForceExactly) {
  auto [kind, n, k, partition, correction] = GetParam();
  Rng rng(7000 + static_cast<std::uint64_t>(kind) * 100 + n + k);
  auto pts = workload::generate<2>(kind, n, rng);
  std::span<const geo::Point<2>> span(pts);
  auto& pool = par::ThreadPool::global();

  Config cfg;
  cfg.k = k;
  cfg.partition = partition;
  cfg.correction = correction;
  cfg.seed = rng.next();
  auto out = NearestNeighborEngine<2>::run(span, cfg, pool);
  auto oracle = knn::brute_force_parallel<2>(pool, span, k);
  expect_rows_equal<2>(out.knn, oracle);

  // Structural sanity.
  EXPECT_GE(out.diag.nodes, 1u);
  EXPECT_GE(out.diag.leaves, 1u);
  EXPECT_GT(out.cost.work, 0u);
  EXPECT_GT(out.cost.depth, 0u);
  ASSERT_FALSE(out.forest.empty());
  EXPECT_EQ(out.forest.point_count(), n);
  EXPECT_EQ(out.report.forest_nodes, out.forest.node_count());
  EXPECT_EQ(out.report.seed, cfg.seed);
}

INSTANTIATE_TEST_SUITE_P(
    SphereHybrid, EngineOracle2D,
    ::testing::Values(
        EngineCase{workload::Kind::UniformCube, 50, 1,
                   PartitionRule::MttvSphere, CorrectionPolicy::Hybrid},
        EngineCase{workload::Kind::UniformCube, 1200, 1,
                   PartitionRule::MttvSphere, CorrectionPolicy::Hybrid},
        EngineCase{workload::Kind::UniformCube, 1200, 4,
                   PartitionRule::MttvSphere, CorrectionPolicy::Hybrid},
        EngineCase{workload::Kind::GaussianClusters, 1500, 2,
                   PartitionRule::MttvSphere, CorrectionPolicy::Hybrid},
        EngineCase{workload::Kind::GridJitter, 1000, 3,
                   PartitionRule::MttvSphere, CorrectionPolicy::Hybrid},
        EngineCase{workload::Kind::AdversarialSlab, 1000, 2,
                   PartitionRule::MttvSphere, CorrectionPolicy::Hybrid},
        EngineCase{workload::Kind::NearCollinear, 900, 2,
                   PartitionRule::MttvSphere, CorrectionPolicy::Hybrid},
        EngineCase{workload::Kind::Duplicates, 1000, 3,
                   PartitionRule::MttvSphere, CorrectionPolicy::Hybrid},
        EngineCase{workload::Kind::SphereShell, 900, 2,
                   PartitionRule::MttvSphere, CorrectionPolicy::Hybrid}));

INSTANTIATE_TEST_SUITE_P(
    OtherPolicies, EngineOracle2D,
    ::testing::Values(
        // §5: hyperplane + always-punt.
        EngineCase{workload::Kind::UniformCube, 1200, 2,
                   PartitionRule::HyperplaneMedian,
                   CorrectionPolicy::AlwaysPunt},
        EngineCase{workload::Kind::GaussianClusters, 1000, 1,
                   PartitionRule::HyperplaneMedian,
                   CorrectionPolicy::AlwaysPunt},
        EngineCase{workload::Kind::Duplicates, 800, 2,
                   PartitionRule::HyperplaneMedian,
                   CorrectionPolicy::AlwaysPunt},
        // Ablations.
        EngineCase{workload::Kind::UniformCube, 1000, 2,
                   PartitionRule::MttvSphere, CorrectionPolicy::AlwaysPunt},
        EngineCase{workload::Kind::UniformCube, 1000, 2,
                   PartitionRule::MttvSphere, CorrectionPolicy::FastOnly},
        EngineCase{workload::Kind::GaussianClusters, 900, 3,
                   PartitionRule::HyperplaneMedian,
                   CorrectionPolicy::Hybrid}));

TEST(Engine, ThreeAndFourDimensions) {
  Rng rng(81);
  auto& pool = par::ThreadPool::global();
  {
    auto pts = workload::uniform_cube<3>(1200, rng);
    std::span<const geo::Point<3>> span(pts);
    Config cfg;
    cfg.k = 2;
    auto out = NearestNeighborEngine<3>::run(span, cfg, pool);
    auto oracle = knn::brute_force_parallel<3>(pool, span, 2);
    expect_rows_equal<3>(out.knn, oracle);
  }
  {
    auto pts = workload::uniform_cube<4>(900, rng);
    std::span<const geo::Point<4>> span(pts);
    Config cfg;
    cfg.k = 1;
    auto out = NearestNeighborEngine<4>::run(span, cfg, pool);
    auto oracle = knn::brute_force_parallel<4>(pool, span, 1);
    expect_rows_equal<4>(out.knn, oracle);
  }
}

TEST(Engine, SimpleDncHigherDimensions) {
  Rng rng(80);
  auto& pool = par::ThreadPool::global();
  {
    auto pts = workload::uniform_cube<3>(1000, rng);
    std::span<const geo::Point<3>> span(pts);
    Config cfg;
    cfg.k = 2;
    auto out = simple_parallel_dnc<3>(span, cfg, pool);
    auto oracle = knn::brute_force_parallel<3>(pool, span, 2);
    expect_rows_equal<3>(out.knn, oracle);
    EXPECT_GT(out.diag.punts, 0u);  // §5 always corrects via the structure
  }
  {
    auto pts = workload::gaussian_clusters<4>(800, 4, 0.03, rng);
    std::span<const geo::Point<4>> span(pts);
    Config cfg;
    cfg.k = 1;
    auto out = simple_parallel_dnc<4>(span, cfg, pool);
    auto oracle = knn::brute_force_parallel<4>(pool, span, 1);
    expect_rows_equal<4>(out.knn, oracle);
  }
}

TEST(Engine, LargerInstanceAgainstKdTree) {
  Rng rng(82);
  auto pts = workload::gaussian_clusters<2>(20000, 16, 0.01, rng);
  std::span<const geo::Point<2>> span(pts);
  auto& pool = par::ThreadPool::global();
  Config cfg;
  cfg.k = 3;
  auto out = NearestNeighborEngine<2>::run(span, cfg, pool);
  auto oracle = knn::KdTree<2>(span).all_knn(pool, 3);
  expect_rows_equal<2>(out.knn, oracle);
}

TEST(Engine, DeterministicForFixedSeed) {
  Rng rng(83);
  auto pts = workload::uniform_cube<2>(2000, rng);
  std::span<const geo::Point<2>> span(pts);
  auto& pool = par::ThreadPool::global();
  Config cfg;
  cfg.k = 2;
  cfg.seed = 424242;
  auto a = NearestNeighborEngine<2>::run(span, cfg, pool);
  auto b = NearestNeighborEngine<2>::run(span, cfg, pool);
  EXPECT_EQ(a.knn.neighbors, b.knn.neighbors);
  EXPECT_EQ(a.cost.work, b.cost.work);
  EXPECT_EQ(a.cost.depth, b.cost.depth);
  EXPECT_EQ(a.diag.punts, b.diag.punts);
}

TEST(Engine, TinyInputsAndEdgeCases) {
  auto& pool = par::ThreadPool::global();
  Config cfg;
  cfg.k = 3;
  // n = 1: padded row.
  {
    std::vector<geo::Point<2>> pts{{{0.5, 0.5}}};
    auto out = NearestNeighborEngine<2>::run(
        std::span<const geo::Point<2>>(pts), cfg, pool);
    EXPECT_EQ(out.knn.count(0), 0u);
  }
  // n = 2 with k = 3: one valid neighbor each.
  {
    std::vector<geo::Point<2>> pts{{{0.0, 0.0}}, {{1.0, 0.0}}};
    auto out = NearestNeighborEngine<2>::run(
        std::span<const geo::Point<2>>(pts), cfg, pool);
    EXPECT_EQ(out.knn.count(0), 1u);
    EXPECT_EQ(out.knn.row_neighbors(0)[0], 1u);
    EXPECT_DOUBLE_EQ(out.knn.row_dist2(1)[0], 1.0);
  }
}

TEST(Engine, AllIdenticalPointsLargeInput) {
  // Forces the degenerate-separator path at the root on a size where a
  // quadratic fallback would be noticeable, exercising the O(mk) shortcut.
  std::vector<geo::Point<2>> pts(50000, geo::Point<2>{{2.0, 3.0}});
  auto& pool = par::ThreadPool::global();
  Config cfg;
  cfg.k = 2;
  auto out = NearestNeighborEngine<2>::run(
      std::span<const geo::Point<2>>(pts), cfg, pool);
  EXPECT_GE(out.diag.brute_force_fallbacks, 1u);
  for (std::size_t i = 0; i < pts.size(); i += 997) {
    EXPECT_EQ(out.knn.count(i), 2u);
    EXPECT_DOUBLE_EQ(out.knn.radius(i), 0.0);
    for (auto nbr : out.knn.row_neighbors(i)) EXPECT_NE(nbr, i);
  }
}

TEST(Engine, DiagnosticsReflectPolicies) {
  Rng rng(85);
  auto pts = workload::uniform_cube<2>(4000, rng);
  std::span<const geo::Point<2>> span(pts);
  auto& pool = par::ThreadPool::global();

  Config punty;
  punty.k = 1;
  punty.correction = CorrectionPolicy::AlwaysPunt;
  auto out_punt = NearestNeighborEngine<2>::run(span, punty, pool);
  EXPECT_GT(out_punt.diag.punts, 0u);
  EXPECT_EQ(out_punt.diag.fast_corrections, 0u);

  Config hybrid;
  hybrid.k = 1;
  auto out_hybrid = NearestNeighborEngine<2>::run(span, hybrid, pool);
  EXPECT_GT(out_hybrid.diag.fast_corrections, 0u);
  // Hybrid on benign data punts rarely if at all.
  EXPECT_LE(out_hybrid.diag.punts, out_punt.diag.punts);
}

TEST(Engine, CostDepthGrowsSlowly) {
  Rng rng(86);
  auto& pool = par::ThreadPool::global();
  Config cfg;
  cfg.k = 1;
  std::vector<double> depths;
  for (std::size_t n : {2048u, 16384u}) {
    auto pts = workload::uniform_cube<2>(n, rng);
    auto out = NearestNeighborEngine<2>::run(
        std::span<const geo::Point<2>>(pts), cfg, pool);
    depths.push_back(static_cast<double>(out.cost.depth));
  }
  // Depth must not scale linearly with n: 8x points, far less than 8x
  // depth (Theorem 6.1 says O(log n)).
  EXPECT_LT(depths[1], depths[0] * 4.0);
}

TEST(Engine, WorkIsNearLinear) {
  Rng rng(87);
  auto& pool = par::ThreadPool::global();
  Config cfg;
  cfg.k = 1;
  std::vector<double> works;
  for (std::size_t n : {4096u, 32768u}) {
    auto pts = workload::uniform_cube<2>(n, rng);
    auto out = NearestNeighborEngine<2>::run(
        std::span<const geo::Point<2>>(pts), cfg, pool);
    works.push_back(static_cast<double>(out.cost.work));
  }
  // 8x points should cost within ~16x work (n log n plus constants), far
  // from the 64x a quadratic algorithm would show.
  EXPECT_LT(works[1], works[0] * 24.0);
}

TEST(Api, BuildKnnGraphEndToEnd) {
  Rng rng(88);
  auto pts = workload::gaussian_clusters<2>(1500, 6, 0.02, rng);
  std::span<const geo::Point<2>> span(pts);
  auto& pool = par::ThreadPool::global();
  Config cfg;
  auto out = build_knn_graph<2>(span, 3, cfg, pool);
  EXPECT_EQ(out.graph.vertex_count(), 1500u);
  // Definition 1.1 closure against the oracle result.
  auto oracle = knn::brute_force_parallel<2>(pool, span, 3);
  for (std::size_t i = 0; i < 1500; ++i) {
    for (std::uint32_t j : oracle.row_neighbors(i)) {
      if (j == knn::KnnResult::kInvalid) break;
      EXPECT_TRUE(out.graph.has_edge(static_cast<std::uint32_t>(i), j));
    }
  }
}

TEST(Api, NeighborhoodSystemRadiiMatchOracle) {
  Rng rng(89);
  auto pts = workload::uniform_cube<3>(800, rng);
  std::span<const geo::Point<3>> span(pts);
  auto& pool = par::ThreadPool::global();
  Config cfg;
  auto balls = build_neighborhood_system<3>(span, 2, cfg, pool);
  auto oracle = knn::brute_force_parallel<3>(pool, span, 2);
  for (std::size_t i = 0; i < balls.size(); ++i)
    EXPECT_DOUBLE_EQ(balls[i].radius, oracle.radius(i));
}

}  // namespace
}  // namespace sepdc::core
