// Tests for service/service_stats.hpp, pinning the CAS-loop EWMA
// estimator (observe_batch_cost), the histogram snapshot plumbing, and
// the flush-trigger taxonomy the broker maintains
// (flush_by_size + flush_by_deadline + flush_by_stop == flushes).
#include "service/service_stats.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <span>
#include <thread>
#include <vector>

#include "service/query_broker.hpp"
#include "workload/generators.hpp"

namespace {

using sepdc::service::ServiceStats;

// The shed class split and the sharding counters ride the same relaxed
// snapshot path as everything else: shed partitions into
// shed_interactive + shed_bulk (so attempts == submitted + shed stays
// exact per class), and boundary_fanout is derived at snapshot time as
// fanout_queries / submitted — 0 when nothing was submitted, never NaN.
TEST(ServiceStats, ShedSplitAndFanoutSnapshot) {
  ServiceStats stats;
  EXPECT_DOUBLE_EQ(stats.snapshot().boundary_fanout, 0.0);

  ServiceStats::add(stats.submitted, 80);
  ServiceStats::add(stats.shed, 12);
  ServiceStats::add(stats.shed_interactive, 5);
  ServiceStats::add(stats.shed_bulk, 7);
  ServiceStats::add(stats.fanout_queries, 20);
  ServiceStats::add(stats.shard_visits, 130);

  auto s = stats.snapshot();
  EXPECT_EQ(s.shed, 12u);
  EXPECT_EQ(s.shed, s.shed_interactive + s.shed_bulk);
  EXPECT_EQ(s.submitted + s.shed, 92u);  // attempts
  EXPECT_EQ(s.fanout_queries, 20u);
  EXPECT_EQ(s.shard_visits, 130u);
  EXPECT_DOUBLE_EQ(s.boundary_fanout, 20.0 / 80.0);
}

TEST(ServiceStats, EwmaSingleWriterSequence) {
  ServiceStats stats;
  stats.observe_batch_cost(10.0);  // first observation seeds the estimate
  EXPECT_DOUBLE_EQ(stats.est_batch_us_per_query.load(), 10.0);
  stats.observe_batch_cost(20.0);  // 10 + 0.25 * (20 - 10)
  EXPECT_DOUBLE_EQ(stats.est_batch_us_per_query.load(), 12.5);
  stats.observe_batch_cost(12.5);  // at the estimate: no movement
  EXPECT_DOUBLE_EQ(stats.est_batch_us_per_query.load(), 12.5);
}

// The invariant the CAS loop buys: with any number of concurrent
// writers, every update applies the EWMA step to the value it actually
// replaced, so the estimate can never escape the convex hull of the
// observations. A torn read-modify-write (the old load+store version)
// loses updates and can land outside the hull under enough contention.
TEST(ServiceStats, EwmaMultiWriterStaysInHull) {
  ServiceStats stats;
  constexpr double kLo = 50.0;
  constexpr double kHi = 150.0;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&stats, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Deterministic values spanning [kLo, kHi].
        double v = kLo + (kHi - kLo) *
                             static_cast<double>((t * 31 + i) % 101) / 100.0;
        stats.observe_batch_cost(v);
      }
    });
  }
  for (auto& th : threads) th.join();
  double est = stats.est_batch_us_per_query.load();
  EXPECT_GE(est, kLo);
  EXPECT_LE(est, kHi);
}

TEST(ServiceStats, SnapshotCarriesHistograms) {
  ServiceStats stats;
  stats.queue_wait.record(1000, 4);
  stats.batch_execute.record(5000);
  stats.punt_latency.record(200, 2);
  stats.flush_size.record(4);
  auto s = stats.snapshot();
  EXPECT_EQ(s.queue_wait.count(), 4u);
  EXPECT_EQ(s.batch_execute.count(), 1u);
  EXPECT_EQ(s.punt_latency.count(), 2u);
  EXPECT_EQ(s.flush_size.count(), 1u);
  EXPECT_EQ(s.flush_size.sum(), 4u);
}

// Every flush is labeled by the trigger the flusher actually acted on,
// and the three labels partition `flushes`. In particular a shutdown
// drain whose size condition was never met counts as flush_by_stop —
// the bug this pins is that it used to count as flush_by_size.
TEST(ServiceStats, FlushTriggerTaxonomyReconciles) {
  using sepdc::geo::Point;
  using sepdc::service::BrokerConfig;
  using sepdc::service::QueryBroker;
  using std::chrono::microseconds;
  sepdc::Rng rng(90);
  auto points = sepdc::workload::generate<2>(
      sepdc::workload::Kind::UniformCube, 200, rng);
  std::span<const Point<2>> span(points);
  auto& pool = sepdc::par::ThreadPool::global();

  {
    // Size trigger: a bulk of 16 against max_batch 4 flushes by size.
    BrokerConfig cfg;
    cfg.max_batch = 4;
    cfg.flush_interval = microseconds(60'000'000);
    cfg.index.seed = 1;
    QueryBroker<2> broker(span, cfg, pool);
    broker.bulk_knn(span.subspan(0, 16), 3);
    auto s = broker.stats();
    EXPECT_EQ(s.flushes, 1u);
    EXPECT_EQ(s.flush_by_size, 1u);
    EXPECT_EQ(s.flush_by_size + s.flush_by_deadline + s.flush_by_stop,
              s.flushes);
  }
  {
    // Deadline trigger: one query against an unreachable size threshold.
    BrokerConfig cfg;
    cfg.max_batch = 1 << 20;
    cfg.flush_interval = microseconds(500);
    cfg.index.seed = 2;
    QueryBroker<2> broker(span, cfg, pool);
    broker.knn(points[0], 3);
    auto s = broker.stats();
    EXPECT_EQ(s.flushes, 1u);
    EXPECT_EQ(s.flush_by_deadline, 1u);
    EXPECT_EQ(s.flush_by_size + s.flush_by_deadline + s.flush_by_stop,
              s.flushes);
  }
  {
    // Stop trigger: a pending query whose size and deadline conditions
    // are both unreachable is drained by shutdown().
    BrokerConfig cfg;
    cfg.max_batch = 1 << 20;
    cfg.flush_interval = microseconds(60'000'000);
    cfg.index.seed = 3;
    QueryBroker<2> broker(span, cfg, pool);
    std::thread client([&] { broker.knn(points[0], 3); });
    while (broker.stats().submitted == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    broker.shutdown();
    client.join();
    auto s = broker.stats();
    EXPECT_EQ(s.flushes, 1u);
    EXPECT_EQ(s.flush_by_stop, 1u);
    EXPECT_EQ(s.flush_by_size, 0u);
    EXPECT_EQ(s.flush_by_deadline, 0u);
    EXPECT_EQ(s.flush_by_size + s.flush_by_deadline + s.flush_by_stop,
              s.flushes);
    EXPECT_EQ(s.batched, 1u);  // drained, answered exactly, not dropped
  }
}

}  // namespace
