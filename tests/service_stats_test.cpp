// Tests for service/service_stats.hpp, pinning the CAS-loop EWMA
// estimator (observe_batch_cost) and the histogram snapshot plumbing.
#include "service/service_stats.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace {

using sepdc::service::ServiceStats;

TEST(ServiceStats, EwmaSingleWriterSequence) {
  ServiceStats stats;
  stats.observe_batch_cost(10.0);  // first observation seeds the estimate
  EXPECT_DOUBLE_EQ(stats.est_batch_us_per_query.load(), 10.0);
  stats.observe_batch_cost(20.0);  // 10 + 0.25 * (20 - 10)
  EXPECT_DOUBLE_EQ(stats.est_batch_us_per_query.load(), 12.5);
  stats.observe_batch_cost(12.5);  // at the estimate: no movement
  EXPECT_DOUBLE_EQ(stats.est_batch_us_per_query.load(), 12.5);
}

// The invariant the CAS loop buys: with any number of concurrent
// writers, every update applies the EWMA step to the value it actually
// replaced, so the estimate can never escape the convex hull of the
// observations. A torn read-modify-write (the old load+store version)
// loses updates and can land outside the hull under enough contention.
TEST(ServiceStats, EwmaMultiWriterStaysInHull) {
  ServiceStats stats;
  constexpr double kLo = 50.0;
  constexpr double kHi = 150.0;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&stats, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Deterministic values spanning [kLo, kHi].
        double v = kLo + (kHi - kLo) *
                             static_cast<double>((t * 31 + i) % 101) / 100.0;
        stats.observe_batch_cost(v);
      }
    });
  }
  for (auto& th : threads) th.join();
  double est = stats.est_batch_us_per_query.load();
  EXPECT_GE(est, kLo);
  EXPECT_LE(est, kHi);
}

TEST(ServiceStats, SnapshotCarriesHistograms) {
  ServiceStats stats;
  stats.queue_wait.record(1000, 4);
  stats.batch_execute.record(5000);
  stats.punt_latency.record(200, 2);
  stats.flush_size.record(4);
  auto s = stats.snapshot();
  EXPECT_EQ(s.queue_wait.count(), 4u);
  EXPECT_EQ(s.batch_execute.count(), 1u);
  EXPECT_EQ(s.punt_latency.count(), 2u);
  EXPECT_EQ(s.flush_size.count(), 1u);
  EXPECT_EQ(s.flush_size.sum(), 4u);
}

}  // namespace
