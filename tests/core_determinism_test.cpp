// Schedule-independence regression suite: the same seed must produce the
// same run regardless of the physical thread count. Randomness is keyed
// to recursion paths (not to threads or arena slots), cost composes over
// the logical fork-join tree, and every shared diagnostic counter is a
// sum or max — so k-NN rows, the forest shape, the model cost, and the
// diagnostics snapshot all have to match bit for bit between a 1-worker
// and a 4-worker pool.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "core/engine.hpp"
#include "workload/generators.hpp"

namespace sepdc::core {
namespace {

// The schedule-independent shape of a forest: preorder sequence of
// (begin, end, leaf?). Arena slot numbers depend on the allocation
// schedule, so two equal-shape forests may number their slots
// differently; the preorder view is the canonical form.
template <int D>
std::vector<std::tuple<std::uint32_t, std::uint32_t, bool>> shape_of(
    const PartitionForest<D>& f) {
  std::vector<std::tuple<std::uint32_t, std::uint32_t, bool>> shape;
  f.preorder([&](std::uint32_t id) {
    const auto& n = f.node(id);
    shape.emplace_back(n.begin, n.end, n.is_leaf());
  });
  return shape;
}

void expect_same_run(const NearestNeighborEngine<2>::Output& a,
                     const NearestNeighborEngine<2>::Output& b) {
  // Results.
  EXPECT_EQ(a.knn.neighbors, b.knn.neighbors);
  EXPECT_EQ(a.knn.dist2, b.knn.dist2);
  // Model cost.
  EXPECT_EQ(a.cost.work, b.cost.work);
  EXPECT_EQ(a.cost.depth, b.cost.depth);
  // Forest shape (canonical preorder view).
  EXPECT_EQ(shape_of(a.forest), shape_of(b.forest));
  EXPECT_EQ(a.forest.node_count(), b.forest.node_count());
  EXPECT_EQ(a.forest.height(), b.forest.height());
  // Full diagnostics snapshot, histograms included.
  EXPECT_EQ(a.diag.nodes, b.diag.nodes);
  EXPECT_EQ(a.diag.leaves, b.diag.leaves);
  EXPECT_EQ(a.diag.tree_height, b.diag.tree_height);
  EXPECT_EQ(a.diag.separator_attempts, b.diag.separator_attempts);
  EXPECT_EQ(a.diag.max_attempts_at_node, b.diag.max_attempts_at_node);
  EXPECT_EQ(a.diag.separator_fallbacks, b.diag.separator_fallbacks);
  EXPECT_EQ(a.diag.brute_force_fallbacks, b.diag.brute_force_fallbacks);
  EXPECT_EQ(a.diag.fast_corrections, b.diag.fast_corrections);
  EXPECT_EQ(a.diag.punts, b.diag.punts);
  EXPECT_EQ(a.diag.march_aborts, b.diag.march_aborts);
  EXPECT_EQ(a.diag.total_cut_balls, b.diag.total_cut_balls);
  EXPECT_EQ(a.diag.max_cut_balls, b.diag.max_cut_balls);
  EXPECT_EQ(a.diag.max_cut_fraction, b.diag.max_cut_fraction);
  EXPECT_EQ(a.diag.max_march_fraction, b.diag.max_march_fraction);
  EXPECT_EQ(a.diag.corrected_balls, b.diag.corrected_balls);
  EXPECT_EQ(a.diag.query_builds, b.diag.query_builds);
  EXPECT_EQ(a.diag.points_by_level, b.diag.points_by_level);
  EXPECT_EQ(a.diag.cuts_by_level, b.diag.cuts_by_level);
  // Report mirrors the run.
  EXPECT_EQ(a.report.seed, b.report.seed);
  EXPECT_EQ(a.report.forest_nodes, b.report.forest_nodes);
  EXPECT_EQ(a.report.forest_leaves, b.report.forest_leaves);
  EXPECT_EQ(a.report.forest_height, b.report.forest_height);
}

TEST(Determinism, PoolSizeOneVersusFourIdenticalRuns) {
  Rng rng(512);
  auto pts = workload::gaussian_clusters<2>(12000, 6, 0.02, rng);
  std::span<const geo::Point<2>> span(pts);
  Config cfg;
  cfg.k = 3;
  cfg.seed = 20260806;

  par::ThreadPool solo(1);
  par::ThreadPool quad(4);
  auto a = NearestNeighborEngine<2>::run(span, cfg, solo);
  auto b = NearestNeighborEngine<2>::run(span, cfg, quad);
  expect_same_run(a, b);
}

TEST(Determinism, HoldsUnderHostileConfigs) {
  // The punt/abort paths allocate query trees and march frontiers; they
  // must stay schedule-independent too.
  Rng rng(513);
  auto pts = workload::uniform_cube<2>(9000, rng);
  std::span<const geo::Point<2>> span(pts);

  Config cfg;
  cfg.k = 2;
  cfg.seed = 31337;
  cfg.march_budget_factor = 0.01;  // frequent aborts -> punts

  par::ThreadPool solo(1);
  par::ThreadPool quad(4);
  auto a = NearestNeighborEngine<2>::run(span, cfg, solo);
  auto b = NearestNeighborEngine<2>::run(span, cfg, quad);
  expect_same_run(a, b);
  EXPECT_GT(a.diag.punts, 0u);
}

TEST(Determinism, RepeatedRunsOnSamePoolIdentical) {
  Rng rng(514);
  auto pts = workload::generate<2>(workload::Kind::Duplicates, 6000, rng);
  std::span<const geo::Point<2>> span(pts);
  Config cfg;
  cfg.k = 2;
  cfg.seed = 99;
  auto& pool = par::ThreadPool::global();
  auto a = NearestNeighborEngine<2>::run(span, cfg, pool);
  auto b = NearestNeighborEngine<2>::run(span, cfg, pool);
  expect_same_run(a, b);
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Sanity check that the comparison above has teeth: a different seed
  // changes the separator draws and thus (almost surely) the forest.
  Rng rng(515);
  auto pts = workload::uniform_cube<2>(8000, rng);
  std::span<const geo::Point<2>> span(pts);
  Config cfg;
  cfg.k = 1;
  auto& pool = par::ThreadPool::global();
  cfg.seed = 1;
  auto a = NearestNeighborEngine<2>::run(span, cfg, pool);
  cfg.seed = 2;
  auto b = NearestNeighborEngine<2>::run(span, cfg, pool);
  EXPECT_NE(shape_of(a.forest), shape_of(b.forest));
  // Both still exact: rows agree even though the trees differ.
  EXPECT_EQ(a.knn.dist2, b.knn.dist2);
}

}  // namespace
}  // namespace sepdc::core
