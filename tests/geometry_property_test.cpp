// Property tests for the separator-shape classification: consistency
// between point classification and ball classification under random
// shapes, flips, and dimensions — the invariants the correction step's
// correctness argument (Lemma 6.1) rests on.
#include <gtest/gtest.h>

#include "geometry/separator_shape.hpp"
#include "support/rng.hpp"

namespace sepdc::geo {
namespace {

template <int D>
Point<D> random_point(Rng& rng, double scale) {
  Point<D> p;
  for (int i = 0; i < D; ++i) p[i] = rng.uniform(-scale, scale);
  return p;
}

template <int D>
SeparatorShape<D> random_shape(Rng& rng) {
  if (rng.coin(0.7)) {
    Sphere<D> s;
    s.center = random_point<D>(rng, 2.0);
    s.radius = rng.uniform(0.3, 3.0);
    return SeparatorShape<D>::make_sphere(s, rng.coin());
  }
  Halfspace<D> h;
  double len = 0.0;
  do {
    h.normal = random_point<D>(rng, 1.0);
    len = norm(h.normal);
  } while (len < 1e-3);
  // Unit normal keeps the signed distance scale comparable to the
  // coordinate scale (the growth test relies on bounded distances).
  h.normal = h.normal / len;
  h.offset = rng.uniform(-2.0, 2.0);
  return SeparatorShape<D>::make_halfspace(h, rng.coin());
}

// Samples points of a ball (center, boundary-ish, random interior).
template <int D>
std::vector<Point<D>> ball_samples(const Ball<D>& b, Rng& rng) {
  std::vector<Point<D>> out{b.center};
  for (int t = 0; t < 12; ++t) {
    Point<D> dir;
    double len = 0.0;
    do {
      for (int i = 0; i < D; ++i) dir[i] = rng.normal();
      len = norm(dir);
    } while (len < 1e-9);
    double r = b.radius * rng.uniform(0.0, 0.999);
    out.push_back(b.center + dir * (r / len));
  }
  return out;
}

template <int D>
void run_consistency(std::uint64_t seed) {
  Rng rng(seed);
  for (int trial = 0; trial < 400; ++trial) {
    auto shape = random_shape<D>(rng);
    Ball<D> ball{random_point<D>(rng, 2.5), rng.uniform(0.01, 1.5)};
    Region region = shape.classify(ball);
    // The defining property the algorithms rely on: a ball classified
    // Inner (Outer) contains no point classifying Outer (Inner).
    for (const auto& p : ball_samples<D>(ball, rng)) {
      Side side = shape.classify(p);
      if (region == Region::Inner) {
        EXPECT_EQ(side, Side::Inner)
            << "d=" << D << " trial " << trial << ": Inner ball leaked";
      } else if (region == Region::Outer) {
        EXPECT_EQ(side, Side::Outer)
            << "d=" << D << " trial " << trial << ": Outer ball leaked";
      }
    }
  }
}

TEST(SeparatorShapeProperty, BallPointConsistency2D) {
  run_consistency<2>(11);
}
TEST(SeparatorShapeProperty, BallPointConsistency3D) {
  run_consistency<3>(12);
}
TEST(SeparatorShapeProperty, BallPointConsistency4D) {
  run_consistency<4>(13);
}

TEST(SeparatorShapeProperty, FlipSwapsSidesButNotCuts) {
  Rng rng(14);
  for (int trial = 0; trial < 300; ++trial) {
    Sphere<2> s{random_point<2>(rng, 2.0), rng.uniform(0.3, 2.0)};
    auto plain = SeparatorShape<2>::make_sphere(s, false);
    auto flipped = SeparatorShape<2>::make_sphere(s, true);
    auto p = random_point<2>(rng, 3.0);
    EXPECT_NE(plain.classify(p), flipped.classify(p));
    Ball<2> b{random_point<2>(rng, 3.0), rng.uniform(0.01, 1.0)};
    Region a = plain.classify(b);
    Region z = flipped.classify(b);
    if (a == Region::Cut) {
      EXPECT_EQ(z, Region::Cut);
    } else {
      EXPECT_NE(z, Region::Cut);
      EXPECT_NE(a, z);
    }
  }
}

TEST(SeparatorShapeProperty, ZeroRadiusBallMatchesPointClassification) {
  // A radius-0 ball classified Inner/Outer must match its center's point
  // classification; Cut can only occur within the epsilon band.
  Rng rng(15);
  for (int trial = 0; trial < 300; ++trial) {
    auto shape = random_shape<3>(rng);
    auto c = random_point<3>(rng, 3.0);
    Region region = shape.classify(Ball<3>{c, 0.0});
    if (region == Region::Cut) continue;  // on the (widened) surface
    Side side = shape.classify(c);
    EXPECT_EQ(region == Region::Inner, side == Side::Inner);
  }
}

TEST(SeparatorShapeProperty, GrowingBallMonotonicallyReachesCut) {
  // Growing a ball about a fixed center: once it is Cut it never returns
  // to a one-sided classification, and it starts agreeing with the
  // center's side.
  Rng rng(16);
  for (int trial = 0; trial < 200; ++trial) {
    auto shape = random_shape<2>(rng);
    auto c = random_point<2>(rng, 2.0);
    bool seen_cut = false;
    for (double r = 0.01; r < 8.0; r *= 1.6) {
      Region region = shape.classify(Ball<2>{c, r});
      if (seen_cut) {
        EXPECT_EQ(region, Region::Cut)
            << "ball un-cut itself while growing, trial " << trial;
      }
      if (region == Region::Cut) seen_cut = true;
    }
    // A ball large enough to straddle any bounded surface must be Cut —
    // true for spheres; halfspaces always cut sufficiently large balls
    // centered anywhere.
    EXPECT_TRUE(seen_cut) << "trial " << trial;
  }
}

}  // namespace
}  // namespace sepdc::geo
