// The shared separator acceptance search: acceptance, fallback ladder,
// and cost accounting.
#include "core/separator_search.hpp"

#include <gtest/gtest.h>

#include "geometry/constants.hpp"
#include "separator/quality.hpp"
#include "workload/generators.hpp"

namespace sepdc::core {
namespace {

template <int D>
auto searcher(const std::vector<geo::Point<D>>& pts) {
  return [&](std::size_t i) { return pts[i]; };
}

TEST(SeparatorSearch, AcceptsQuicklyOnUniformData) {
  Rng rng(1);
  auto pts = workload::uniform_cube<2>(3000, rng);
  auto out = find_point_separator<2>(
      pts.size(), searcher(pts), PartitionRule::MttvSphere,
      geo::splitting_ratio(2) + 0.05, 64, 0, rng, pvm::CostConfig{});
  ASSERT_TRUE(out.shape.has_value());
  EXPECT_FALSE(out.fallback);
  EXPECT_LE(out.attempts, 10u);
  auto counts = separator::split_counts<2>(
      std::span<const geo::Point<2>>(pts), *out.shape);
  EXPECT_LE(counts.max_fraction(), geo::splitting_ratio(2) + 0.05);
  EXPECT_GT(out.cost.work, pts.size());  // setup pass + validations
}

TEST(SeparatorSearch, ImpossibleDeltaFallsBackButSplits) {
  Rng rng(2);
  auto pts = workload::uniform_cube<2>(2000, rng);
  // delta_limit below 1/2 is unsatisfiable; the search must fall back to
  // its best draw and still produce a non-trivial split.
  auto out = find_point_separator<2>(
      pts.size(), searcher(pts), PartitionRule::MttvSphere, 0.4, 8, 0, rng,
      pvm::CostConfig{});
  ASSERT_TRUE(out.shape.has_value());
  EXPECT_TRUE(out.fallback);
  EXPECT_EQ(out.attempts, 8u);
  auto counts = separator::split_counts<2>(
      std::span<const geo::Point<2>>(pts), *out.shape);
  EXPECT_GT(counts.inner, 0u);
  EXPECT_GT(counts.outer, 0u);
}

TEST(SeparatorSearch, AllIdenticalReturnsEmpty) {
  Rng rng(3);
  std::vector<geo::Point<2>> pts(500, geo::Point<2>{{1.0, 2.0}});
  auto out = find_point_separator<2>(
      pts.size(), searcher(pts), PartitionRule::MttvSphere, 0.8, 16, 0,
      rng, pvm::CostConfig{});
  EXPECT_FALSE(out.shape.has_value());
}

TEST(SeparatorSearch, HyperplaneRuleUsesAxisHint) {
  Rng rng(4);
  auto pts = workload::uniform_cube<3>(1000, rng);
  for (int axis = 0; axis < 3; ++axis) {
    auto out = find_point_separator<3>(
        pts.size(), searcher(pts), PartitionRule::HyperplaneMedian, 0.8,
        16, axis, rng, pvm::CostConfig{});
    ASSERT_TRUE(out.shape.has_value());
    ASSERT_FALSE(out.shape->is_sphere());
    const auto& h = out.shape->halfspace();
    for (int i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(h.normal[i], i == axis ? 1.0 : 0.0);
    }
    auto counts = separator::split_counts<3>(
        std::span<const geo::Point<3>>(pts), *out.shape);
    EXPECT_LE(counts.max_fraction(), 0.55);
  }
}

TEST(SeparatorSearch, CollinearDataRescuedByHyperplane) {
  // Points exactly on a line: sphere draws frequently degenerate, but
  // the ladder must end with a usable split.
  std::vector<geo::Point<2>> pts;
  for (int i = 0; i < 800; ++i)
    pts.push_back({{static_cast<double>(i), 0.0}});
  Rng rng(5);
  auto out = find_point_separator<2>(
      pts.size(), searcher(pts), PartitionRule::MttvSphere, 0.8, 16, 0,
      rng, pvm::CostConfig{});
  ASSERT_TRUE(out.shape.has_value());
  auto counts = separator::split_counts<2>(
      std::span<const geo::Point<2>>(pts), *out.shape);
  EXPECT_GT(counts.inner, 0u);
  EXPECT_GT(counts.outer, 0u);
}

TEST(SeparatorSearch, CostScalesWithAttempts) {
  Rng rng(6);
  auto pts = workload::uniform_cube<2>(4000, rng);
  auto cheap = find_point_separator<2>(
      pts.size(), searcher(pts), PartitionRule::MttvSphere, 0.95, 64, 0,
      rng, pvm::CostConfig{});
  auto pricey = find_point_separator<2>(
      pts.size(), searcher(pts), PartitionRule::MttvSphere, 0.40, 64, 0,
      rng, pvm::CostConfig{});
  // The unsatisfiable target consumes all attempts and therefore much
  // more validation work.
  EXPECT_GT(pricey.cost.work, cheap.cost.work);
  EXPECT_GT(pricey.attempts, cheap.attempts);
}

}  // namespace
}  // namespace sepdc::core
