// Exhaustive small-instance grid: every combination of partition rule,
// correction policy, SCAN model, and fast-correction charging must
// produce bit-identical k-NN output (the knobs may only change *cost*),
// and that output must equal brute force.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "knn/brute_force.hpp"
#include "workload/generators.hpp"

namespace sepdc::core {
namespace {

struct GridAxes {
  PartitionRule partition;
  CorrectionPolicy correction;
  pvm::ScanModel scan;
  FastCorrectionCharging charging;
};

class EngineGrid : public ::testing::TestWithParam<
                       std::tuple<int, int, int, int>> {};

TEST_P(EngineGrid, AllKnobCombinationsExactAndCostSane) {
  auto [pi, ci, si, fi] = GetParam();
  GridAxes axes{
      static_cast<PartitionRule>(pi), static_cast<CorrectionPolicy>(ci),
      static_cast<pvm::ScanModel>(si),
      static_cast<FastCorrectionCharging>(fi)};

  Rng rng(9000 + static_cast<std::uint64_t>(pi * 27 + ci * 9 + si * 3 + fi));
  auto& pool = par::ThreadPool::global();
  for (auto kind :
       {workload::Kind::UniformCube, workload::Kind::GaussianClusters}) {
    auto pts = workload::generate<2>(kind, 700, rng);
    std::span<const geo::Point<2>> span(pts);
    Config cfg;
    cfg.k = 2;
    cfg.seed = 4242;
    cfg.partition = axes.partition;
    cfg.correction = axes.correction;
    cfg.cost.scan = axes.scan;
    cfg.fast_charging = axes.charging;
    auto out = NearestNeighborEngine<2>::run(span, cfg, pool);
    auto oracle = knn::brute_force_parallel<2>(pool, span, 2);
    ASSERT_EQ(out.knn.dist2, oracle.dist2) << workload::kind_name(kind);
    ASSERT_EQ(out.knn.neighbors, oracle.neighbors);
    ASSERT_GT(out.cost.depth, 0u);
    ASSERT_GE(out.cost.work, 700u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FullGrid, EngineGrid,
    ::testing::Combine(::testing::Values(0, 1),    // partition rules
                       ::testing::Values(0, 1, 2),  // correction policies
                       ::testing::Values(0, 1),     // scan models
                       ::testing::Values(0, 1)));   // charging modes

TEST(EngineGridExtra, ScanModelOnlyChangesCostNotResult) {
  Rng rng(9999);
  auto pts = workload::uniform_cube<2>(2500, rng);
  std::span<const geo::Point<2>> span(pts);
  auto& pool = par::ThreadPool::global();
  Config unit;
  unit.k = 3;
  unit.seed = 5;
  Config log_scan = unit;
  log_scan.cost.scan = pvm::ScanModel::Log;

  auto a = NearestNeighborEngine<2>::run(span, unit, pool);
  auto b = NearestNeighborEngine<2>::run(span, log_scan, pool);
  EXPECT_EQ(a.knn.neighbors, b.knn.neighbors);
  EXPECT_EQ(a.cost.work, b.cost.work);  // work is model-independent
  EXPECT_GT(b.cost.depth, a.cost.depth);  // log scans are deeper
}

}  // namespace
}  // namespace sepdc::core
