// Update differential suite: any interleaving of inserts, removes,
// k-NN, and radius queries through the broker must be indistinguishable
// from brute force over the as-of-submission live set — same ids, same
// distances, same (dist2, id) tie order — across every batching /
// punting / compaction configuration, including a zero-worker pool
// (compactions defer until drain) and a threshold low enough that
// background compactions churn mid-schedule. The delta tier, the
// tombstone over-fetch, the sorted merge, and the external-id
// translation may only change latency, never answers.
#include "service/query_broker.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "workload/generators.hpp"

namespace sepdc::service {
namespace {

using Pt = geo::Point<2>;
using KnnRow = std::vector<knn::TopK::Entry>;
using RadiusRow = std::vector<std::pair<std::uint32_t, double>>;
using std::chrono::microseconds;

// Brute force over the current live set — the oracle every broker
// answer is checked against, including tie order.
struct LiveOracle {
  std::map<std::uint32_t, Pt> live;

  KnnRow knn(const Pt& q, std::size_t k,
             std::uint32_t exclude = 0xffffffffu) const {
    KnnRow all;
    all.reserve(live.size());
    for (const auto& [id, p] : live) {
      if (id == exclude) continue;
      all.push_back({geo::distance2(p, q), id});
    }
    std::sort(all.begin(), all.end());
    if (all.size() > k) all.resize(k);
    return all;
  }

  RadiusRow radius(const Pt& q, double r) const {
    RadiusRow out;
    const double r2 = r * r;
    for (const auto& [id, p] : live) {
      const double d2 = geo::distance2(p, q);
      if (d2 <= r2) out.emplace_back(id, d2);  // closed ball
    }
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second < b.second;
      return a.first < b.first;
    });
    return out;
  }

  // A uniformly random live id (the container is small; the walk is
  // fine for a test oracle).
  std::uint32_t any_id(Rng& rng) const {
    auto it = live.begin();
    std::advance(it, static_cast<long>(rng.below(live.size())));
    return it->first;
  }
};

void expect_knn_equal(const KnnRow& got, const KnnRow& want,
                      const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t s = 0; s < got.size(); ++s) {
    EXPECT_EQ(got[s].index, want[s].index) << what << " slot " << s;
    EXPECT_DOUBLE_EQ(got[s].dist2, want[s].dist2) << what << " slot " << s;
  }
}

void expect_radius_equal(const RadiusRow& got, const RadiusRow& want,
                         const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t s = 0; s < got.size(); ++s) {
    EXPECT_EQ(got[s].first, want[s].first) << what << " slot " << s;
    EXPECT_DOUBLE_EQ(got[s].second, want[s].second)
        << what << " slot " << s;
  }
}

struct UpdateVariant {
  const char* name;
  std::size_t max_batch;
  microseconds flush_interval;
  microseconds budget;               // 0 = no deadline
  std::size_t compaction_threshold;  // 0 = manual compact() only
  // ThreadPool constructor arg: 0 = a dedicated default-sized pool,
  // 1 = a zero-worker pool (ThreadPool(1) keeps no workers — the
  // calling thread runs everything via helping waits), -1 = the shared
  // global pool.
  int pool_threads;
};

// Degenerate batching, size-triggered batching under compaction churn,
// a punt-everything deadline, a zero-worker pool (batch kernels and
// compactions all run by helping-wait), and a generous deadline.
constexpr UpdateVariant kVariants[] = {
    {"flush_each_manual", 1, microseconds(0), microseconds(0), 0, -1},
    {"size_16_churn", 16, microseconds(5000), microseconds(0), 24, -1},
    {"punt_everything_churn", 64, microseconds(400), microseconds(1), 24,
     -1},
    {"zero_worker_pool", 8, microseconds(200), microseconds(0), 16, 1},
    {"generous_deadline", 64, microseconds(200), microseconds(1'000'000),
     48, -1},
};

// Runs one seeded schedule of interleaved updates and queries against
// one broker configuration, checking every answer against the oracle
// and the per-op stats reconciliation at quiescence.
void run_schedule(const UpdateVariant& v, workload::Kind kind,
                  std::size_t base_n, std::size_t ops,
                  std::uint64_t seed) {
  SCOPED_TRACE(std::string(v.name) + " " + workload::kind_name(kind) +
               " seed " + std::to_string(seed));
  Rng rng(seed);
  auto points = workload::generate<2>(kind, base_n, rng);

  BrokerConfig cfg;
  cfg.max_batch = v.max_batch;
  cfg.flush_interval = v.flush_interval;
  cfg.delta_compaction_threshold = v.compaction_threshold;
  cfg.index.seed = rng.next();
  par::ThreadPool local_pool(
      v.pool_threads < 0 ? 1u : static_cast<unsigned>(v.pool_threads));
  par::ThreadPool& pool =
      v.pool_threads < 0 ? par::ThreadPool::global() : local_pool;
  QueryBroker<2> broker(std::span<const Pt>(points), cfg, pool);

  LiveOracle oracle;
  for (std::size_t i = 0; i < points.size(); ++i)
    oracle.live.emplace(static_cast<std::uint32_t>(i), points[i]);

  std::uint32_t next_id = static_cast<std::uint32_t>(base_n) + 1000;
  std::size_t n_knn = 0, n_radius = 0, n_inserts = 0, n_removes = 0;

  for (std::size_t op = 0; op < ops; ++op) {
    const std::size_t dice = rng.below(100);
    if (dice < 16) {
      // Insert — every fourth one duplicates the coordinates of a live
      // point, so zero-distance ties span base and delta.
      Pt p;
      if (!oracle.live.empty() && op % 4 == 0) {
        p = oracle.live.find(oracle.any_id(rng))->second;
      } else {
        p = Pt{{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)}};
      }
      const std::uint32_t id = next_id++;
      broker.insert(id, p);
      oracle.live.emplace(id, p);
      ++n_inserts;
    } else if (dice < 22) {
      // Bulk insert: one view publication for the whole batch, with a
      // coordinate duplicated from the live set when possible so ties
      // span base, delta, and within-batch.
      const std::size_t batch = 2 + rng.below(7);
      std::vector<std::uint32_t> ids;
      std::vector<Pt> pts;
      for (std::size_t b = 0; b < batch; ++b) {
        ids.push_back(next_id++);
        if (!oracle.live.empty() && b == 0) {
          pts.push_back(oracle.live.find(oracle.any_id(rng))->second);
        } else {
          pts.push_back(Pt{{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)}});
        }
      }
      broker.insert_bulk(ids, pts);
      for (std::size_t b = 0; b < batch; ++b)
        oracle.live.emplace(ids[b], pts[b]);
      n_inserts += batch;
    } else if (dice < 32) {
      if (oracle.live.empty()) continue;
      const std::uint32_t id = oracle.any_id(rng);
      broker.remove(id);
      oracle.live.erase(id);
      ++n_removes;
    } else if (dice < 38) {
      // Bulk remove of distinct live ids, one view publication.
      if (oracle.live.size() < 4) continue;
      std::vector<std::uint32_t> ids;
      while (ids.size() < 3) {
        const std::uint32_t id = oracle.any_id(rng);
        if (std::find(ids.begin(), ids.end(), id) == ids.end())
          ids.push_back(id);
      }
      broker.remove_bulk(ids);
      for (std::uint32_t id : ids) oracle.live.erase(id);
      n_removes += ids.size();
    } else if (dice < 65) {
      const Pt q{{rng.uniform(-0.1, 1.1), rng.uniform(-0.1, 1.1)}};
      const std::size_t k = 1 + rng.below(6);
      std::uint32_t exclude = QueryBroker<2>::kNoExclude;
      if (!oracle.live.empty() && dice % 3 == 0)
        exclude = oracle.any_id(rng);
      auto row = broker.knn(q, k, v.budget, exclude);
      ++n_knn;
      expect_knn_equal(row, oracle.knn(q, k, exclude),
                       "knn op " + std::to_string(op));
    } else {
      const Pt q{{rng.uniform(-0.1, 1.1), rng.uniform(-0.1, 1.1)}};
      const double r = rng.below(8) == 0 ? 0.0 : rng.uniform(0.02, 0.25);
      auto row = broker.radius(q, r, v.budget);
      ++n_radius;
      expect_radius_equal(row, oracle.radius(q, r),
                          "radius op " + std::to_string(op));
    }
    // Manual-compaction config: compact mid-schedule so both the
    // freshly-compacted and long-pending delta shapes are exercised.
    if (v.compaction_threshold == 0 && op % 64 == 63) broker.compact();
  }

  // Quiescence: join background compactions, then a final bulk sweep
  // over the settled live set.
  broker.drain_rebuilds();
  EXPECT_EQ(broker.live_count(), oracle.live.size());
  std::vector<Pt> sweep;
  for (int i = 0; i < 32; ++i)
    sweep.push_back({{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)}});
  auto rows = broker.bulk_knn(std::span<const Pt>(sweep), 4);
  for (std::size_t i = 0; i < sweep.size(); ++i)
    expect_knn_equal(rows[i], oracle.knn(sweep[i], 4),
                     "sweep row " + std::to_string(i));
  n_knn += sweep.size();

  // Per-op reconciliation (service_stats.hpp invariants) at quiescence.
  auto s = broker.stats();
  EXPECT_EQ(s.submitted, n_knn + n_radius);
  EXPECT_EQ(s.knn_submitted, n_knn);
  EXPECT_EQ(s.radius_submitted, n_radius);
  EXPECT_EQ(s.knn_submitted + s.radius_submitted, s.submitted);
  EXPECT_EQ(s.knn_answered, s.knn_submitted);
  EXPECT_EQ(s.radius_answered, s.radius_submitted);
  EXPECT_EQ(s.batched + s.punted, s.submitted);
  EXPECT_EQ(s.updates_submitted, n_inserts + n_removes);
  EXPECT_EQ(s.inserts, n_inserts);
  EXPECT_EQ(s.removes, n_removes);
  EXPECT_EQ(s.update_apply.count(), s.updates_submitted);
  EXPECT_EQ(s.compaction_build.count(), s.compactions);
  EXPECT_EQ(s.queue_wait.count(), s.batched);
  EXPECT_EQ(s.punt_latency.count(), s.punted);
  if (v.compaction_threshold > 0 &&
      n_inserts + n_removes >= v.compaction_threshold) {
    // Every sealed job resolves as installed or abandoned by drain time.
    EXPECT_GE(s.compactions + s.compactions_abandoned, 1u);
  }
}

class ServiceUpdateDifferential
    : public ::testing::TestWithParam<workload::Kind> {};

TEST_P(ServiceUpdateDifferential, InterleavedSchedulesMatchBruteForce) {
  const workload::Kind kind = GetParam();
  std::uint64_t seed = 4100 + static_cast<std::uint64_t>(kind);
  for (const UpdateVariant& v : kVariants)
    run_schedule(v, kind, 220, 260, seed++);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ServiceUpdateDifferential,
    ::testing::Values(workload::Kind::UniformCube,
                      workload::Kind::GaussianClusters,
                      workload::Kind::Duplicates),
    [](const auto& pinfo) { return workload::kind_name(pinfo.param); });

// Large instance: more points, longer schedules, every variant — the
// stress-labeled half of the suite (tests/CMakeLists.txt registers this
// binary twice with a --gtest_filter split).
TEST(ServiceUpdateDifferentialStress, LargeInterleavedSchedules) {
  std::uint64_t seed = 5200;
  for (const UpdateVariant& v : kVariants) {
    run_schedule(v, workload::Kind::UniformCube, 1200, 1200, seed++);
    run_schedule(v, workload::Kind::Duplicates, 900, 900, seed++);
  }
}

// Invalid updates are rejected at the door: typed QueryError naming the
// offending field, thrown before any counter moves or any view
// publishes.
TEST(ServiceUpdateValidation, InvalidUpdatesThrowBeforeAccounting) {
  auto& pool = par::ThreadPool::global();
  Rng rng(4300);
  auto points = workload::uniform_cube<2>(64, rng);
  BrokerConfig cfg;
  QueryBroker<2> broker(std::span<const Pt>(points), cfg, pool);
  const std::uint64_t seq_before = broker.live_seq();

  try {
    broker.remove(9999);  // never existed
    FAIL() << "remove of a dead id did not throw";
  } catch (const QueryError& e) {
    EXPECT_EQ(e.field(), "id");
  }
  try {
    broker.insert(5, Pt{{0.5, 0.5}});  // id 5 is live in the base
    FAIL() << "insert of a live id did not throw";
  } catch (const QueryError& e) {
    EXPECT_EQ(e.field(), "id");
  }
  try {
    broker.insert(0xffffffffu, Pt{{0.5, 0.5}});  // reserved sentinel
    FAIL() << "insert of the reserved id did not throw";
  } catch (const QueryError& e) {
    EXPECT_EQ(e.field(), "id");
  }
  try {
    broker.insert(100,
                  Pt{{std::numeric_limits<double>::quiet_NaN(), 0.0}});
    FAIL() << "insert of a NaN point did not throw";
  } catch (const QueryError& e) {
    EXPECT_EQ(e.field(), "point");
  }

  auto s = broker.stats();
  EXPECT_EQ(s.updates_submitted, 0u);
  EXPECT_EQ(s.inserts, 0u);
  EXPECT_EQ(s.removes, 0u);
  EXPECT_EQ(s.update_apply.count(), 0u);
  EXPECT_EQ(broker.live_seq(), seq_before) << "rejected update published";
  EXPECT_EQ(broker.live_count(), points.size());

  // One valid update of each kind moves exactly the matching counters.
  broker.insert(100, Pt{{0.5, 0.5}});
  broker.remove(100);
  s = broker.stats();
  EXPECT_EQ(s.updates_submitted, 2u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.removes, 1u);
  EXPECT_EQ(s.update_apply.count(), 2u);
  // And the id is dead again: a second remove is invalid.
  EXPECT_THROW(broker.remove(100), QueryError);
}

// Regression (per-op view publication): a bulk mutation batch must
// publish exactly one LiveView — before insert_bulk/remove_bulk, each
// element published its own view, so a 64-point ingest cost 64 shared-
// pointer swaps and readers could observe every partial prefix of the
// batch.
TEST(ServiceUpdateBulk, BulkBatchPublishesOneView) {
  auto& pool = par::ThreadPool::global();
  Rng rng(4800);
  auto points = workload::uniform_cube<2>(80, rng);
  BrokerConfig cfg;
  cfg.delta_compaction_threshold = 0;  // no background publications
  QueryBroker<2> broker(std::span<const Pt>(points), cfg, pool);

  std::vector<std::uint32_t> ids;
  std::vector<Pt> pts;
  for (std::uint32_t i = 0; i < 64; ++i) {
    ids.push_back(1000 + i);
    pts.push_back(Pt{{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)}});
  }
  std::uint64_t seq = broker.live_seq();
  broker.insert_bulk(ids, pts);
  EXPECT_EQ(broker.live_seq(), seq + 1)
      << "bulk insert published more than one view";
  EXPECT_EQ(broker.live_count(), points.size() + ids.size());

  seq = broker.live_seq();
  broker.remove_bulk(std::span<const std::uint32_t>(ids).subspan(0, 32));
  EXPECT_EQ(broker.live_seq(), seq + 1)
      << "bulk remove published more than one view";
  EXPECT_EQ(broker.live_count(), points.size() + 32);

  auto s = broker.stats();
  EXPECT_EQ(s.updates_submitted, 96u);
  EXPECT_EQ(s.inserts, 64u);
  EXPECT_EQ(s.removes, 32u);
  // The apply histogram counts per element (weighted record), so the
  // histogram/counter reconciliation invariant survives bulk batches.
  EXPECT_EQ(s.update_apply.count(), s.updates_submitted);
}

// A bulk batch is validated before any element mutates: one bad entry
// anywhere rejects the whole batch with nothing applied, nothing
// published, and no counter moved.
TEST(ServiceUpdateBulk, BulkBatchValidatesBeforeAnyMutation) {
  auto& pool = par::ThreadPool::global();
  Rng rng(4900);
  auto points = workload::uniform_cube<2>(48, rng);
  BrokerConfig cfg;
  QueryBroker<2> broker(std::span<const Pt>(points), cfg, pool);
  const std::uint64_t seq = broker.live_seq();

  const Pt good{{0.5, 0.5}};
  const Pt bad{{std::numeric_limits<double>::quiet_NaN(), 0.0}};
  struct Case {
    const char* what;
    std::vector<std::uint32_t> ids;
    std::vector<Pt> pts;
    const char* field;
  };
  const Case cases[] = {
      {"NaN mid-batch", {500, 501, 502}, {good, bad, good}, "point"},
      {"live id mid-batch", {500, 5, 502}, {good, good, good}, "id"},
      {"repeated id in batch", {500, 501, 500}, {good, good, good}, "id"},
      {"reserved id mid-batch",
       {500, 0xffffffffu, 502},
       {good, good, good},
       "id"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.what);
    try {
      broker.insert_bulk(c.ids, c.pts);
      FAIL() << "bad bulk insert did not throw";
    } catch (const QueryError& e) {
      EXPECT_EQ(e.field(), c.field);
    }
    EXPECT_EQ(broker.live_seq(), seq) << "rejected bulk batch published";
    EXPECT_EQ(broker.live_count(), points.size());
    EXPECT_FALSE(broker.contains(500)) << "partial bulk insert applied";
  }

  // Bulk remove: a dead id or an in-batch repeat rejects the batch.
  try {
    broker.remove_bulk(std::vector<std::uint32_t>{3, 9999});
    FAIL() << "bulk remove of a dead id did not throw";
  } catch (const QueryError& e) {
    EXPECT_EQ(e.field(), "id");
  }
  try {
    broker.remove_bulk(std::vector<std::uint32_t>{3, 4, 3});
    FAIL() << "bulk remove with a repeat did not throw";
  } catch (const QueryError& e) {
    EXPECT_EQ(e.field(), "id");
  }
  EXPECT_TRUE(broker.contains(3)) << "partial bulk remove applied";
  EXPECT_EQ(broker.live_seq(), seq);

  auto s = broker.stats();
  EXPECT_EQ(s.updates_submitted, 0u);
  EXPECT_EQ(s.update_apply.count(), 0u);
}

// remove + reinsert of the same external id — within one delta segment,
// across a compaction, and re-using a base id at new coordinates.
TEST(ServiceUpdateEdges, RemoveThenReinsertSameId) {
  auto& pool = par::ThreadPool::global();
  Rng rng(4400);
  auto points = workload::uniform_cube<2>(120, rng);
  BrokerConfig cfg;
  cfg.delta_compaction_threshold = 0;
  QueryBroker<2> broker(std::span<const Pt>(points), cfg, pool);

  const Pt moved{{2.0, 2.0}};  // far outside the cube: unambiguous hits
  broker.remove(7);
  broker.insert(7, moved);  // tombstone + add side by side in one segment
  EXPECT_TRUE(broker.contains(7));

  auto hits = broker.radius(moved, 0.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].first, 7u);
  EXPECT_EQ(hits[0].second, 0.0);
  // The old incarnation is dead: nothing lives at the base coordinates.
  for (const auto& [id, d2] : broker.radius(points[7], 1e-12))
    EXPECT_NE(id, 7u);

  // Compaction folds the reinserted point into the base; answers hold.
  ASSERT_TRUE(broker.compact());
  hits = broker.radius(moved, 0.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].first, 7u);

  // And the cycle works again on the compacted (non-identity) base.
  broker.remove(7);
  EXPECT_FALSE(broker.contains(7));
  broker.insert(7, Pt{{3.0, 3.0}});
  hits = broker.radius(Pt{{3.0, 3.0}}, 0.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].first, 7u);
  EXPECT_EQ(broker.live_count(), points.size());
}

// A broker can start with no points at all: every answer comes from the
// delta tier until the first compaction builds a real base.
TEST(ServiceUpdateEdges, DeltaOnlyServiceServesAndCompacts) {
  auto& pool = par::ThreadPool::global();
  Rng rng(4500);
  BrokerConfig cfg;
  cfg.max_batch = 4;
  cfg.delta_compaction_threshold = 0;
  QueryBroker<2> broker(std::span<const Pt>{}, cfg, pool);
  EXPECT_EQ(broker.live_count(), 0u);

  // Empty service: well-formed empty answers, not errors.
  EXPECT_TRUE(broker.knn(Pt{{0.5, 0.5}}, 3).empty());
  EXPECT_TRUE(broker.radius(Pt{{0.5, 0.5}}, 0.2).empty());

  LiveOracle oracle;
  for (std::uint32_t i = 0; i < 24; ++i) {
    Pt p{{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)}};
    broker.insert(i, p);
    oracle.live.emplace(i, p);
  }
  const Pt q{{0.4, 0.6}};
  expect_knn_equal(broker.knn(q, 5), oracle.knn(q, 5), "delta-only knn");
  expect_radius_equal(broker.radius(q, 0.3), oracle.radius(q, 0.3),
                      "delta-only radius");

  // First compaction turns the delta into the first real base.
  ASSERT_TRUE(broker.compact());
  ASSERT_NE(broker.current_snapshot(), nullptr);
  EXPECT_NE(broker.current_snapshot()->index, nullptr);
  EXPECT_EQ(broker.stats().compactions, 1u);
  expect_knn_equal(broker.knn(q, 5), oracle.knn(q, 5), "compacted knn");

  // Updates keep working on top of the compacted base.
  broker.remove(3);
  oracle.live.erase(3);
  broker.insert(100, Pt{{0.41, 0.61}});
  oracle.live.emplace(100, Pt{{0.41, 0.61}});
  expect_knn_equal(broker.knn(q, 5), oracle.knn(q, 5), "post-compact knn");
  expect_radius_equal(broker.radius(q, 0.3), oracle.radius(q, 0.3),
                      "post-compact radius");
  EXPECT_EQ(broker.live_count(), oracle.live.size());
}

// Removing every point drives the service back to the empty state —
// and compacting an all-tombstone delta installs the empty generation.
TEST(ServiceUpdateEdges, RemoveEverythingThenCompact) {
  auto& pool = par::ThreadPool::global();
  Rng rng(4600);
  auto points = workload::uniform_cube<2>(40, rng);
  BrokerConfig cfg;
  cfg.delta_compaction_threshold = 0;
  QueryBroker<2> broker(std::span<const Pt>(points), cfg, pool);

  for (std::uint32_t i = 0; i < points.size(); ++i) broker.remove(i);
  EXPECT_EQ(broker.live_count(), 0u);
  EXPECT_TRUE(broker.knn(points[0], 3).empty());
  EXPECT_TRUE(broker.radius(points[0], 10.0).empty());

  ASSERT_TRUE(broker.compact());
  EXPECT_EQ(broker.live_count(), 0u);
  EXPECT_TRUE(broker.knn(points[0], 3).empty());

  // The empty service accepts inserts again.
  broker.insert(0, points[0]);
  auto row = broker.knn(points[0], 1);
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0].index, 0u);
}

// rebuild() resets the live set to exactly the given points: pending
// updates are dropped, ids return to 0..n-1 identity.
TEST(ServiceUpdateEdges, RebuildResetsLiveSet) {
  auto& pool = par::ThreadPool::global();
  Rng rng(4700);
  auto points = workload::uniform_cube<2>(150, rng);
  auto points2 = workload::uniform_cube<2>(90, rng);
  BrokerConfig cfg;
  cfg.delta_compaction_threshold = 0;
  QueryBroker<2> broker(std::span<const Pt>(points), cfg, pool);

  broker.insert(5000, Pt{{0.2, 0.8}});
  broker.remove(3);
  EXPECT_TRUE(broker.contains(5000));
  EXPECT_FALSE(broker.contains(3));

  broker.rebuild(std::span<const Pt>(points2));
  EXPECT_EQ(broker.live_count(), points2.size());
  EXPECT_FALSE(broker.contains(5000)) << "rebuild kept a pending insert";
  EXPECT_TRUE(broker.contains(3));  // identity id 3 of the new set

  LiveOracle oracle;
  for (std::size_t i = 0; i < points2.size(); ++i)
    oracle.live.emplace(static_cast<std::uint32_t>(i), points2[i]);
  const Pt q{{0.5, 0.5}};
  expect_knn_equal(broker.knn(q, 4), oracle.knn(q, 4), "post-rebuild knn");
}

}  // namespace
}  // namespace sepdc::service
